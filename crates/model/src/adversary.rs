//! Adaptive adversaries: placement-observing request pickers.
//!
//! The lower-bound constructions (Lemma 4.1, Avin et al.'s Ω(k)) grant
//! the adversary one power: it sees the online algorithm's placement
//! *before* choosing each request. [`AdaptiveAdversary`] names exactly
//! that power — an object that maps the live [`Placement`] to the next
//! requested [`Edge`] — and generalizes the [`CutChaser`] that the
//! lower-bound experiments hard-coded into the workload zoo.
//!
//! Three built-in strategies:
//!
//! * [`CutChaser`] (re-used from [`crate::workload`]) — rotate over the
//!   current cut edges, spreading pressure;
//! * [`GreedyCutMaximizer`] — always hit the cut edge incident to the
//!   most loaded server, concentrating pressure where migrations are
//!   most constrained;
//! * [`SeparationChaser`] — hit the cut edge whose endpoints were
//!   collocated most recently, punishing every merge the algorithm
//!   performs (the "separate what was just joined" adversary).
//!
//! Every strategy is deterministic given the placement stream, so
//! adversary-driven runs are reproducible and snapshot/restorable. The
//! randomized *search* over adversary schedules lives in the scenario
//! engine (`rdbp_engine::search`), not here: strategies are the inner
//! deterministic moves, search composes them.
//!
//! [`AdversaryWorkload`] adapts any strategy into a [`Workload`] whose
//! [`Workload::is_adaptive`] answers `true`, so adversaries plug into
//! the driver, the scenario engine and the serve stack unchanged.

use serde::{DeError, Value};

use crate::workload::{obj, CutChaser, Workload};
use crate::{Edge, Placement};

/// An adaptive adversary: observes the algorithm's placement each step
/// and picks the next request.
///
/// Implementations must be deterministic functions of their own state
/// and the observed placement stream — the adversary-search harness
/// relies on replaying a found schedule bit-identically.
pub trait AdaptiveAdversary {
    /// Picks the next request given the algorithm's current placement.
    fn next_request(&mut self, placement: &Placement) -> Edge;

    /// Human-readable strategy name (for reports and registries).
    fn name(&self) -> &'static str;

    /// Exports a serializable snapshot of all mutable state, or `None`
    /// if the strategy does not support checkpointing. Same contract as
    /// [`Workload::export_state`].
    fn export_state(&self) -> Option<Value> {
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an
    /// identically-configured instance.
    ///
    /// # Errors
    /// Returns a [`DeError`] if the strategy does not support
    /// checkpointing or the snapshot does not fit.
    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Err(DeError(format!(
            "adversary `{}` does not support snapshot/restore",
            self.name()
        )))
    }
}

impl<T: AdaptiveAdversary + ?Sized> AdaptiveAdversary for Box<T> {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        (**self).next_request(placement)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn export_state(&self) -> Option<Value> {
        (**self).export_state()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        (**self).restore_state(state)
    }
}

/// The cut-chaser is the original adaptive adversary; its strategy is
/// its [`Workload`] behaviour verbatim.
impl AdaptiveAdversary for CutChaser {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        Workload::next_request(self, placement)
    }

    fn name(&self) -> &'static str {
        Workload::name(self)
    }

    fn export_state(&self) -> Option<Value> {
        Workload::export_state(self)
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        Workload::restore_state(self, state)
    }
}

/// Adapts an [`AdaptiveAdversary`] into a [`Workload`] (always
/// adaptive), so adversaries run everywhere workloads do: driver,
/// scenario engine, serve stack.
#[derive(Debug, Clone)]
pub struct AdversaryWorkload<A: AdaptiveAdversary>(A);

impl<A: AdaptiveAdversary> AdversaryWorkload<A> {
    /// Wraps a strategy.
    pub fn new(adversary: A) -> Self {
        Self(adversary)
    }

    /// Unwraps the strategy.
    pub fn into_inner(self) -> A {
        self.0
    }
}

impl<A: AdaptiveAdversary> Workload for AdversaryWorkload<A> {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        self.0.next_request(placement)
    }

    // Adaptive by definition: batched executors must interleave
    // generation with serving.
    fn is_adaptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn export_state(&self) -> Option<Value> {
        self.0.export_state()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.0.restore_state(state)
    }
}

/// **Greedy cut-maximizer**: request the cut edge incident to the most
/// loaded server (ties: smaller load on the other endpoint, then the
/// smaller edge index). Against algorithms that collocate by migrating
/// into the requested edge's servers, this pins the pressure where
/// capacity head-room is smallest, forcing either repeated
/// communication charges or cascading evictions.
///
/// If the placement has no cut edge, edge 0 is requested.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyCutMaximizer;

impl GreedyCutMaximizer {
    /// Creates the (stateless) strategy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl AdaptiveAdversary for GreedyCutMaximizer {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let mut best: Option<(u32, u32, Edge)> = None;
        for e in placement.cut_edges() {
            let (u, v) = placement.instance().endpoints(e);
            let lu = placement.load(placement.server(u));
            let lv = placement.load(placement.server(v));
            let key = (lu.max(lv), lu.min(lv));
            let better = match best {
                None => true,
                // Max primary load; among those, the tighter (smaller)
                // secondary load binds the algorithm harder; the edge
                // index breaks remaining ties deterministically.
                Some((bmax, bmin, be)) => {
                    key.0 > bmax || (key.0 == bmax && (key.1 < bmin || (key.1 == bmin && e < be)))
                }
            };
            if better {
                best = Some((key.0, key.1, e));
            }
        }
        best.map_or(Edge(0), |(_, _, e)| e)
    }

    fn name(&self) -> &'static str {
        "greedy-cut"
    }

    // Stateless: an empty snapshot restores trivially.
    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![]))
    }

    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Ok(())
    }
}

/// **Separation chaser**: request the cut edge whose endpoints were
/// collocated most recently (ties: the smaller edge index). Whenever
/// the algorithm merges a requested pair, that pair becomes the most
/// recently collocated — so the moment the algorithm separates it
/// again (or any eviction cuts it), the adversary pounces. Algorithms
/// that shuffle processes pay for every join they later undo.
///
/// If the placement has no cut edge, edge 0 is requested.
#[derive(Debug, Clone, Default)]
pub struct SeparationChaser {
    clock: u64,
    last_collocated: Vec<u64>,
}

impl SeparationChaser {
    /// Creates the strategy (sizes its timestamp table lazily on first
    /// observation).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AdaptiveAdversary for SeparationChaser {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let n = placement.instance().n() as usize;
        if self.last_collocated.len() != n {
            self.last_collocated = vec![0; n];
        }
        self.clock += 1;
        let mut best: Option<(u64, Edge)> = None;
        for e in placement.instance().edges() {
            if placement.is_cut(e) {
                let stamp = self.last_collocated[e.0 as usize];
                let better = match best {
                    None => true,
                    Some((bstamp, be)) => stamp > bstamp || (stamp == bstamp && e < be),
                };
                if better {
                    best = Some((stamp, e));
                }
            } else {
                self.last_collocated[e.0 as usize] = self.clock;
            }
        }
        best.map_or(Edge(0), |(_, e)| e)
    }

    fn name(&self) -> &'static str {
        "separation"
    }

    fn export_state(&self) -> Option<Value> {
        use serde::Serialize as _;
        Some(obj(vec![
            ("clock", self.clock.to_value()),
            ("last_collocated", self.last_collocated.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        use serde::Deserialize as _;
        self.clock = u64::from_value(state.get_field("clock")?)?;
        self.last_collocated = Vec::<u64>::from_value(state.get_field("last_collocated")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::record;
    use crate::{Placement, Process, RingInstance, Server};

    fn placement() -> Placement {
        Placement::contiguous(&RingInstance::new(16, 4, 4))
    }

    #[test]
    fn greedy_cut_requests_cut_edges_on_the_heaviest_server() {
        let mut p = placement();
        // Unbalance: server 1 takes process 0, so server 1 has load 5.
        assert!(p.migrate(Process(0), Server(1)));
        let mut adv = GreedyCutMaximizer::new();
        let e = adv.next_request(&p);
        assert!(p.is_cut(e));
        let (u, v) = p.instance().endpoints(e);
        let hit = p.load(p.server(u)).max(p.load(p.server(v)));
        let heaviest = (0..4).map(|s| p.load(Server(s))).max().unwrap();
        assert_eq!(hit, heaviest, "must target the most loaded server");
    }

    #[test]
    fn greedy_cut_is_deterministic_and_falls_back_to_edge_zero() {
        let p = placement();
        let mut a = GreedyCutMaximizer::new();
        let mut b = GreedyCutMaximizer::new();
        assert_eq!(a.next_request(&p), b.next_request(&p));
        // A single-server instance has no cut edge.
        let whole = Placement::contiguous(&RingInstance::new(8, 1, 8));
        assert_eq!(a.next_request(&whole), Edge(0));
    }

    #[test]
    fn separation_chaser_pounces_on_the_freshest_separation() {
        let mut p = placement();
        let mut adv = SeparationChaser::new();
        // Warm up timestamps on the contiguous placement.
        let first = adv.next_request(&p);
        assert!(p.is_cut(first));
        // Collocate edge 3's endpoints (3,4) by moving process 4 to
        // server 0, then separate them again: edge 3 is now the most
        // recently collocated cut edge.
        assert!(p.migrate(Process(4), Server(0)));
        let _ = adv.next_request(&p); // observes (3,4) joined
        assert!(p.migrate(Process(4), Server(1)));
        let e = adv.next_request(&p);
        assert_eq!(e, Edge(3), "must chase the freshest separation");
    }

    #[test]
    fn separation_chaser_snapshot_roundtrip() {
        let p = placement();
        let mut adv = SeparationChaser::new();
        let _ = adv.next_request(&p);
        let snap = adv.export_state().unwrap();
        let mut fresh = SeparationChaser::new();
        fresh.restore_state(&snap).unwrap();
        assert_eq!(adv.next_request(&p), fresh.next_request(&p));
    }

    #[test]
    fn cut_chaser_adversary_matches_its_workload_stream() {
        let p = placement();
        let mut as_workload = CutChaser::new();
        let want = record(&mut as_workload, &p, 12);
        let mut as_adversary = CutChaser::new();
        let got: Vec<Edge> = (0..12)
            .map(|_| AdaptiveAdversary::next_request(&mut as_adversary, &p))
            .collect();
        assert_eq!(got, want, "the two trait hats must share one strategy");
    }

    #[test]
    fn adversary_workload_is_adaptive_and_delegates() {
        let p = placement();
        let mut w = AdversaryWorkload::new(GreedyCutMaximizer::new());
        assert!(w.is_adaptive());
        assert_eq!(Workload::name(&w), "greedy-cut");
        let e = Workload::next_request(&mut w, &p);
        assert!(p.is_cut(e));
        let snap = Workload::export_state(&w).unwrap();
        assert!(Workload::restore_state(&mut w, &snap).is_ok());
    }

    #[test]
    fn boxed_adversaries_dispatch() {
        let p = placement();
        let mut boxed: Box<dyn AdaptiveAdversary> = Box::new(SeparationChaser::new());
        assert_eq!(boxed.name(), "separation");
        assert!(p.is_cut(boxed.next_request(&p)));
    }
}
