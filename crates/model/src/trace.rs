//! Recorded request traces: a portable, human-inspectable JSON format.
//!
//! Traces pin down an instance, the workload that generated them and the
//! exact request sequence, so experiments can be replayed bit-for-bit
//! across machines and the offline optima can be computed on the same
//! input the online algorithm saw.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Edge, RingInstance};

/// A recorded request sequence together with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The instance the trace was generated for.
    pub instance: RingInstance,
    /// Name of the generating workload.
    pub workload: String,
    /// RNG seed used by the workload (0 for deterministic workloads).
    pub seed: u64,
    /// The requested edges, in order.
    pub requests: Vec<Edge>,
}

impl Trace {
    /// Creates a trace after validating every request against the
    /// instance.
    ///
    /// # Panics
    /// Panics if any request is not a valid edge of the instance.
    #[must_use]
    pub fn new(
        instance: RingInstance,
        workload: impl Into<String>,
        seed: u64,
        requests: Vec<Edge>,
    ) -> Self {
        for e in &requests {
            assert!(e.0 < instance.n(), "request {} out of range", e.0);
        }
        Self {
            instance,
            workload: workload.into(),
            seed,
            requests,
        }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-edge request counts (the weight vector `w_e` the offline
    /// static optimum is computed from).
    #[must_use]
    pub fn edge_weights(&self) -> Vec<u64> {
        let mut w = vec![0u64; self.instance.n() as usize];
        for e in &self.requests {
            w[e.0 as usize] += 1;
        }
        w
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    /// Returns any underlying I/O or serialization error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        let mut writer = BufWriter::new(file);
        serde_json::to_writer(&mut writer, self)?;
        writer.flush()
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns any underlying I/O or parse error.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let file = File::open(path)?;
        let reader = BufReader::new(file);
        Ok(serde_json::from_reader(reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record, UniformRandom};
    use crate::Placement;

    #[test]
    fn edge_weights_count_requests() {
        let inst = RingInstance::new(4, 2, 2);
        let t = Trace::new(inst, "manual", 0, vec![Edge(0), Edge(1), Edge(1), Edge(3)]);
        assert_eq!(t.edge_weights(), vec![1, 2, 0, 1]);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let inst = RingInstance::new(16, 4, 4);
        let placement = Placement::contiguous(&inst);
        let mut w = UniformRandom::new(99);
        let requests = record(&mut w, &placement, 64);
        let t = Trace::new(inst, "uniform", 99, requests);

        let dir = std::env::temp_dir().join("rdbp-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_requests() {
        let inst = RingInstance::new(4, 2, 2);
        let _ = Trace::new(inst, "bad", 0, vec![Edge(9)]);
    }
}
