//! The simulation driver: charges costs, audits invariants.
//!
//! The driver — not the algorithm — is the source of truth for cost
//! accounting. For every request it
//!
//! 1. charges communication cost from the *current* placement ("serving
//!    a communication request incurs cost of exactly 1, if both
//!    requested processes are located on different servers"),
//! 2. lets the algorithm react (migrations happen here),
//! 3. charges the migrations the algorithm reports and, in
//!    [`AuditLevel::Full`], cross-checks them against the actual
//!    placement diff,
//! 4. audits the capacity constraint `max load ≤ limit`.

use crate::workload::Workload;
use crate::{CostLedger, Edge, Placement};

/// An online algorithm for ring-demand balanced partitioning.
///
/// Implementations maintain their own [`Placement`] and react to one
/// request at a time. They must report the number of migrations each
/// request triggered; the driver verifies the report in
/// [`AuditLevel::Full`] runs.
pub trait OnlineAlgorithm {
    /// The algorithm's current placement of processes onto servers.
    fn placement(&self) -> &Placement;

    /// Serves one communication request and returns the number of
    /// process migrations performed while serving it.
    fn serve(&mut self, request: Edge) -> u64;

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str {
        "online"
    }
}

/// How strictly the driver validates each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditLevel {
    /// Verify reported migrations against a placement diff (O(n)/step)
    /// and check the capacity limit after every step.
    Full {
        /// Maximum allowed server load, typically `⌈α·k⌉` for the
        /// algorithm's resource-augmentation factor `α`.
        load_limit: u32,
    },
    /// Charge costs only; no per-step invariant checks (for throughput
    /// benchmarks).
    None,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Total communication + migration costs.
    pub ledger: CostLedger,
    /// Requests served.
    pub steps: u64,
    /// Largest server load ever observed (after serving each request).
    pub max_load_seen: u32,
    /// Steps on which the load limit was exceeded (only counted under
    /// [`AuditLevel::Full`]).
    pub capacity_violations: u64,
}

impl RunReport {
    fn new() -> Self {
        Self {
            ledger: CostLedger::new(),
            steps: 0,
            max_load_seen: 0,
            capacity_violations: 0,
        }
    }
}

/// Runs `algorithm` against `workload` for `steps` requests.
///
/// # Panics
/// Panics under [`AuditLevel::Full`] if the algorithm under-reports its
/// migrations (reported < actual placement diff).
pub fn run<A, W>(algorithm: &mut A, workload: &mut W, steps: u64, audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    let mut report = RunReport::new();
    let mut before: Option<Placement> = None;
    for _ in 0..steps {
        let request = workload.next_request(algorithm.placement());
        step(algorithm, request, audit, &mut report, &mut before);
    }
    report
}

/// Replays a fixed request trace against `algorithm`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace<A>(algorithm: &mut A, requests: &[Edge], audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
{
    let mut report = RunReport::new();
    let mut before: Option<Placement> = None;
    for &request in requests {
        step(algorithm, request, audit, &mut report, &mut before);
    }
    report
}

fn step<A>(
    algorithm: &mut A,
    request: Edge,
    audit: AuditLevel,
    report: &mut RunReport,
    scratch: &mut Option<Placement>,
) where
    A: OnlineAlgorithm + ?Sized,
{
    if algorithm.placement().is_cut(request) {
        report.ledger.communication += 1;
    }
    if let AuditLevel::Full { .. } = audit {
        // Reuse the scratch placement to avoid an allocation per step.
        match scratch {
            Some(prev) => prev.clone_from(algorithm.placement()),
            None => *scratch = Some(algorithm.placement().clone()),
        }
    }
    let reported = algorithm.serve(request);
    report.ledger.migration += reported;
    report.steps += 1;

    let max_load = algorithm.placement().max_load();
    report.max_load_seen = report.max_load_seen.max(max_load);

    if let AuditLevel::Full { load_limit } = audit {
        let actual = scratch
            .as_ref()
            .expect("scratch placement set above")
            .migration_distance(algorithm.placement());
        assert!(
            reported >= actual,
            "algorithm under-reported migrations: reported {reported}, actual {actual}"
        );
        if max_load > load_limit {
            report.capacity_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Sequential;
    use crate::{Process, RingInstance, Server};

    /// A do-nothing algorithm that keeps the initial placement.
    struct Lazy {
        placement: Placement,
    }

    impl OnlineAlgorithm for Lazy {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn serve(&mut self, _request: Edge) -> u64 {
            0
        }

        fn name(&self) -> &'static str {
            "lazy"
        }
    }

    /// Collocates the endpoints of every requested cut edge by moving
    /// the counter-clockwise endpoint (deliberately ignores capacity).
    struct GreedyPull {
        placement: Placement,
    }

    impl OnlineAlgorithm for GreedyPull {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn serve(&mut self, request: Edge) -> u64 {
            let (a, b) = self.placement.instance().endpoints(request);
            if self.placement.server(a) != self.placement.server(b) {
                let target = self.placement.server(b);
                u64::from(self.placement.migrate(a, target))
            } else {
                0
            }
        }
    }

    #[test]
    fn lazy_pays_communication_only() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = Lazy {
            placement: Placement::contiguous(&inst),
        };
        // One full ring pass: hits the 3 cut edges exactly once each.
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 12, AuditLevel::Full { load_limit: 4 });
        assert_eq!(report.ledger.communication, 3);
        assert_eq!(report.ledger.migration, 0);
        assert_eq!(report.capacity_violations, 0);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    fn greedy_migrations_are_charged_and_audited() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let trace = vec![Edge(3), Edge(3), Edge(2)];
        let report = run_trace(&mut alg, &trace, AuditLevel::Full { load_limit: 12 });
        // First request to edge 3 is cut (comm 1) and pulls p3 over
        // (mig 1). Second request: no longer cut. Third request edge 2 is
        // now cut (p2 on server 0, p3 on server 1): comm 1, mig 1.
        assert_eq!(report.ledger.communication, 2);
        assert_eq!(report.ledger.migration, 2);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn capacity_violations_are_counted() {
        let inst = RingInstance::new(6, 3, 2);
        let mut p = Placement::contiguous(&inst);
        // Overload server 0 from the start.
        p.migrate(Process(2), Server(0));
        p.migrate(Process(3), Server(0));
        let mut alg = Lazy { placement: p };
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 5, AuditLevel::Full { load_limit: 3 });
        assert_eq!(report.capacity_violations, 5);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    #[should_panic(expected = "under-reported")]
    fn under_reporting_is_caught() {
        struct Cheater {
            placement: Placement,
        }
        impl OnlineAlgorithm for Cheater {
            fn placement(&self) -> &Placement {
                &self.placement
            }
            fn serve(&mut self, _r: Edge) -> u64 {
                self.placement.migrate(Process(0), Server(1));
                0 // lies
            }
        }
        let inst = RingInstance::new(6, 3, 2);
        let mut alg = Cheater {
            placement: Placement::contiguous(&inst),
        };
        let _ = run_trace(&mut alg, &[Edge(0)], AuditLevel::Full { load_limit: 10 });
    }
}
