//! The simulation driver: charges costs, audits invariants.
//!
//! The driver — not the algorithm — is the source of truth for cost
//! accounting. For every request it
//!
//! 1. charges communication cost from the *current* placement ("serving
//!    a communication request incurs cost of exactly 1, if both
//!    requested processes are located on different servers"),
//! 2. lets the algorithm react (migrations happen here),
//! 3. charges the migrations the algorithm reports and, in
//!    [`AuditLevel::Full`], cross-checks them against the placement's
//!    drained migration journal — O(changed) per step instead of the
//!    former O(n) clone + Hamming diff,
//! 4. audits the capacity constraint `max load ≤ limit` (an O(1) read
//!    of the placement's incrementally maintained max).
//!
//! ## Batched stepping
//!
//! [`Driver::step_batch`] / [`Driver::step_batch_generated`] serve a
//! whole request batch with one observer dispatch ([`BatchEvent`])
//! instead of one per request. Accounting is bit-identical to the
//! per-step entry points: under full auditing every request still runs
//! every audit; under [`AuditLevel::None`] the batch is handed to
//! [`OnlineAlgorithm::serve_batch`], whose contract fixes the same
//! request-at-a-time charging order. Adaptive workloads (those that
//! inspect the live placement) are automatically generated
//! request-by-request so batching never changes what an adversary sees.

use std::collections::HashMap;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::workload::Workload;
use crate::{CostLedger, Edge, Placement, Process, WorkCounters};

/// How many requests [`Driver::step_batch_generated`] pre-generates per
/// [`Workload::fill_batch`] call. Bounds the driver's request buffer
/// while amortizing the per-edge virtual dispatch.
const GEN_CHUNK: u64 = 4096;

/// What a whole batch did inside [`OnlineAlgorithm::serve_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests whose edge was cut *at request time* (communication
    /// cost, charged in request order as each request is served).
    pub charged: u64,
    /// Total migrations reported across the batch.
    pub migrations: u64,
    /// Largest max-load observed after serving each request of the
    /// batch.
    pub max_load_seen: u32,
}

/// An online algorithm for ring-demand balanced partitioning.
///
/// Implementations maintain their own [`Placement`] and react to one
/// request at a time. They must report the number of migrations each
/// request triggered; the driver verifies the report against the
/// placement's migration journal in [`AuditLevel::Full`] runs.
pub trait OnlineAlgorithm {
    /// The algorithm's current placement of processes onto servers.
    fn placement(&self) -> &Placement;

    /// Mutable access to the placement — **driver plumbing**, used to
    /// arm and drain the migration journal around each audited serve.
    /// Algorithms must route their own moves through
    /// [`Placement::migrate`]/[`Placement::migrate_segment`] as usual.
    fn placement_mut(&mut self) -> &mut Placement;

    /// Serves one communication request and returns the number of
    /// process migrations performed while serving it.
    fn serve(&mut self, request: Edge) -> u64;

    /// Serves a request batch, charging communication per request from
    /// the placement *as it stands when that request is reached* (the
    /// same order the per-step driver uses).
    ///
    /// The default loops over [`OnlineAlgorithm::serve`];
    /// implementations may specialize (e.g. pre-route the whole batch)
    /// but must keep the request-at-a-time accounting order so batched
    /// and unbatched runs produce identical ledgers.
    fn serve_batch(&mut self, requests: &[Edge]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &request in requests {
            out.charged += u64::from(self.placement().is_cut(request));
            out.migrations += self.serve(request);
            out.max_load_seen = out.max_load_seen.max(self.placement().max_load());
        }
        out
    }

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str {
        "online"
    }

    /// Exports a serializable snapshot of every piece of mutable state,
    /// or `None` if the algorithm does not support checkpointing.
    ///
    /// The contract (shared with [`Workload::export_state`]): restoring
    /// the snapshot into a *freshly constructed* instance — same
    /// instance, same configuration, same seed — via
    /// [`Self::restore_state`] must make every subsequent `serve` call
    /// behave bit-identically to the instance the snapshot was taken
    /// from. Construction-time randomness (e.g. a random shift) need
    /// not be captured separately as long as the snapshot overwrites
    /// everything it influenced.
    fn export_state(&self) -> Option<Value> {
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an
    /// identically-configured instance.
    ///
    /// # Errors
    /// Returns a [`DeError`] if the algorithm does not support
    /// checkpointing or the snapshot does not fit this instance. On
    /// error the instance may have been partially updated and must be
    /// discarded — restore into a freshly constructed instance.
    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Err(DeError(format!(
            "algorithm `{}` does not support snapshot/restore",
            self.name()
        )))
    }

    /// The algorithm's deterministic work counters (see
    /// [`WorkCounters`]): everything the algorithm and its placement
    /// counted since construction. The default surfaces the placement's
    /// counters (migrations, max-load updates); algorithms that own
    /// further instrumented machinery (e.g. per-interval MTS policies)
    /// override this to merge those counters in.
    fn work_counters(&self) -> WorkCounters {
        let mut counters = WorkCounters::default();
        self.placement().add_work_counters(&mut counters);
        counters
    }
}

/// How strictly the driver validates each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditLevel {
    /// Verify reported migrations against the placement's migration
    /// journal (O(changed)/step) and check the capacity limit after
    /// every step.
    Full {
        /// Maximum allowed server load, typically `⌈α·k⌉` for the
        /// algorithm's resource-augmentation factor `α`.
        load_limit: u32,
    },
    /// Charge costs only; no per-step invariant checks (for throughput
    /// benchmarks).
    None,
}

/// Outcome of a simulation run.
///
/// Reports are self-describing when serialized: the driver captures the
/// algorithm and workload names from their traits, so a persisted report
/// records what produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the algorithm that was driven ([`OnlineAlgorithm::name`]).
    pub algorithm: String,
    /// Name of the request source ([`Workload::name`], or `"trace"` for
    /// [`run_trace`] replays).
    pub workload: String,
    /// Total communication + migration costs.
    pub ledger: CostLedger,
    /// Requests served.
    pub steps: u64,
    /// Largest server load ever observed (after serving each request).
    pub max_load_seen: u32,
    /// Steps on which the load limit was exceeded (only counted under
    /// [`AuditLevel::Full`]).
    pub capacity_violations: u64,
}

impl RunReport {
    /// An empty report carrying the given provenance names.
    #[must_use]
    pub fn new(algorithm: impl Into<String>, workload: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            workload: workload.into(),
            ledger: CostLedger::new(),
            steps: 0,
            max_load_seen: 0,
            capacity_violations: 0,
        }
    }
}

/// What the driver observed while serving one request. Emitted to
/// [`Observer::on_step`] after the step's costs were charged and its
/// audits ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// 0-based index of the step within the run.
    pub step: u64,
    /// The requested edge.
    pub request: Edge,
    /// Whether communication cost 1 was charged (the edge was cut at
    /// request time).
    pub charged: bool,
    /// Migrations the algorithm reported for this step (the migration
    /// cost delta).
    pub migrations: u64,
    /// Maximum server load after serving the request.
    pub max_load: u32,
    /// Whether this step exceeded the load limit (always `false` under
    /// [`AuditLevel::None`]).
    pub violated: bool,
}

impl StepEvent {
    /// The step's contribution to the total cost
    /// (`communication + migration` delta).
    #[must_use]
    pub fn cost_delta(&self) -> u64 {
        u64::from(self.charged) + self.migrations
    }
}

/// What the driver observed over one request batch. Emitted to
/// [`Observer::on_batch`] after the whole batch was charged and
/// audited — one dispatch instead of `served`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// 0-based index of the batch's first step within the run.
    pub start_step: u64,
    /// Requests served by this batch.
    pub served: u64,
    /// Requests of the batch that were charged communication.
    pub charged: u64,
    /// Migrations reported across the batch.
    pub migrations: u64,
    /// Largest max-load observed after serving each request.
    pub max_load: u32,
    /// Steps of the batch that exceeded the load limit (always 0 under
    /// [`AuditLevel::None`]).
    pub violations: u64,
}

impl BatchEvent {
    fn at(start_step: u64) -> Self {
        Self {
            start_step,
            served: 0,
            charged: 0,
            migrations: 0,
            max_load: 0,
            violations: 0,
        }
    }

    /// The batch's contribution to the total cost
    /// (`communication + migration` delta).
    #[must_use]
    pub fn cost_delta(&self) -> u64 {
        self.charged + self.migrations
    }
}

/// A streaming consumer of driver events.
///
/// Observers see every step as it happens — per-step cost curves, CSV
/// emission, load head-room tracking — instead of only the end-of-run
/// [`RunReport`]. They are passive: an observer cannot alter costs,
/// audits, or the algorithm's behaviour. Built-in implementations live
/// in [`crate::observers`].
pub trait Observer {
    /// Called once per request, after costs were charged and audits ran.
    fn on_step(&mut self, _event: &StepEvent) {}

    /// Called once per batch by the batched entry points
    /// ([`Driver::step_batch`], [`Driver::step_batch_generated`],
    /// [`run_batch`]). Batched runs do **not** call
    /// [`Observer::on_step`].
    fn on_batch(&mut self, _event: &BatchEvent) {}

    /// Whether this observer needs per-step events. Executors that are
    /// free to choose (e.g. the scenario engine) route runs through the
    /// batched driver when every observer answers `false` — the
    /// allocation-free fast path. Defaults to `true` so custom per-step
    /// observers keep working unchanged.
    fn wants_steps(&self) -> bool {
        true
    }

    /// Called once when the run completes, with the final report.
    fn on_finish(&mut self, _report: &RunReport) {}
}

/// The do-nothing observer ([`run`] and [`run_trace`] use it).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn wants_steps(&self) -> bool {
        false
    }
}

/// Runs `algorithm` against `workload` for `steps` requests.
///
/// # Panics
/// Panics under [`AuditLevel::Full`] if the algorithm mis-reports its
/// migrations (reported ≠ journaled moves).
pub fn run<A, W>(algorithm: &mut A, workload: &mut W, steps: u64, audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    run_observed(algorithm, workload, steps, audit, &mut NoopObserver)
}

/// Runs `algorithm` against `workload`, streaming a [`StepEvent`] per
/// request to `observer`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_observed<A, W>(
    algorithm: &mut A,
    workload: &mut W,
    steps: u64,
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), workload.name(), audit);
    for _ in 0..steps {
        driver.step_generated(algorithm, workload, observer);
    }
    driver.finish(observer)
}

/// Runs `algorithm` against `workload` through the batched driver:
/// requests are served in batches of `batch`, with one
/// [`BatchEvent`] dispatched per batch instead of a [`StepEvent`] per
/// request. Accounting (ledger, max load, violations) is identical to
/// [`run`] for every batch size.
///
/// # Panics
/// Panics if `batch == 0`; otherwise same contract as [`run`].
pub fn run_batch<A, W>(
    algorithm: &mut A,
    workload: &mut W,
    steps: u64,
    batch: u64,
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    assert!(batch > 0, "batch size must be positive");
    let mut driver = Driver::new(algorithm.name(), workload.name(), audit);
    let mut left = steps;
    while left > 0 {
        let take = left.min(batch);
        driver.step_batch_generated(algorithm, workload, take, observer);
        left -= take;
    }
    driver.finish(observer)
}

/// [`run_observed`] plus the run's merged [`WorkCounters`] — the
/// per-step entry point of the perf-gate bench harness.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_counted<A, W>(
    algorithm: &mut A,
    workload: &mut W,
    steps: u64,
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> (RunReport, WorkCounters)
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), workload.name(), audit);
    for _ in 0..steps {
        driver.step_generated(algorithm, workload, observer);
    }
    let counters = driver.work_counters(algorithm);
    (driver.finish(observer), counters)
}

/// [`run_batch`] plus the run's merged [`WorkCounters`].
///
/// # Panics
/// Same contract as [`run_batch`].
pub fn run_batch_counted<A, W>(
    algorithm: &mut A,
    workload: &mut W,
    steps: u64,
    batch: u64,
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> (RunReport, WorkCounters)
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    assert!(batch > 0, "batch size must be positive");
    let mut driver = Driver::new(algorithm.name(), workload.name(), audit);
    let mut left = steps;
    while left > 0 {
        let take = left.min(batch);
        driver.step_batch_generated(algorithm, workload, take, observer);
        left -= take;
    }
    let counters = driver.work_counters(algorithm);
    (driver.finish(observer), counters)
}

/// [`run_trace_observed`] plus the run's merged [`WorkCounters`].
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace_counted<A>(
    algorithm: &mut A,
    requests: &[Edge],
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> (RunReport, WorkCounters)
where
    A: OnlineAlgorithm + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), "trace", audit);
    for &request in requests {
        driver.step(algorithm, request, observer);
    }
    let counters = driver.work_counters(algorithm);
    (driver.finish(observer), counters)
}

/// Replays a fixed request trace against `algorithm`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace<A>(algorithm: &mut A, requests: &[Edge], audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
{
    run_trace_observed(algorithm, requests, audit, &mut NoopObserver)
}

/// Replays a fixed request trace, streaming a [`StepEvent`] per request
/// to `observer`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace_observed<A>(
    algorithm: &mut A,
    requests: &[Edge],
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), "trace", audit);
    for &request in requests {
        driver.step(algorithm, request, observer);
    }
    driver.finish(observer)
}

/// The incremental driver: the referee state of a run in flight.
///
/// [`run_observed`] and [`run_trace_observed`] are thin loops over
/// this; long-lived callers (the serve subsystem's sessions) hold a
/// `Driver` open and feed it requests as they arrive. Cost charging and
/// auditing are identical in both shapes — a run assembled from any
/// interleaving of [`Driver::step`]/[`Driver::step_batch`] calls
/// produces the same [`RunReport`] as the equivalent batch run.
///
/// A driver can also be [resumed](Driver::resume) from a persisted
/// [`RunReport`], which continues the accounting exactly where the
/// report left off (the snapshot/restore path).
#[derive(Debug, Clone)]
pub struct Driver {
    report: RunReport,
    audit: AuditLevel,
    /// Scratch: request buffer reused across generated batches. Pure
    /// cache — never part of a snapshot.
    gen_buf: Vec<Edge>,
    /// Scratch: process → latest destination while verifying one step's
    /// journal (cleared per step, capacity retained).
    chain: HashMap<u32, u32>,
    /// Work counter: requests this driver instance served. Unlike
    /// `report.steps` this never includes pre-[`Driver::resume`]
    /// history — counters describe work actually performed here.
    requests: u64,
    /// Work counter: steps that ran the full per-step audit.
    audited_steps: u64,
    /// Work counter: journal records verified and drained.
    journal_records: u64,
}

impl Driver {
    /// A fresh driver for the named algorithm × workload pair.
    #[must_use]
    pub fn new(
        algorithm: impl Into<String>,
        workload: impl Into<String>,
        audit: AuditLevel,
    ) -> Self {
        Self {
            report: RunReport::new(algorithm, workload),
            audit,
            gen_buf: Vec::new(),
            chain: HashMap::new(),
            requests: 0,
            audited_steps: 0,
            journal_records: 0,
        }
    }

    /// Resumes accounting from a mid-run report (snapshot restore).
    /// Work counters start at zero: they describe work this driver
    /// instance performs, not the restored history.
    #[must_use]
    pub fn resume(report: RunReport, audit: AuditLevel) -> Self {
        Self {
            report,
            audit,
            gen_buf: Vec::new(),
            chain: HashMap::new(),
            requests: 0,
            audited_steps: 0,
            journal_records: 0,
        }
    }

    /// The audit level every step runs under.
    #[must_use]
    pub fn audit(&self) -> AuditLevel {
        self.audit
    }

    /// The accumulated report so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The merged deterministic work counters of this run: the driver's
    /// own counts (requests, audited steps, journal records) plus
    /// everything `algorithm` counted
    /// ([`OnlineAlgorithm::work_counters`]). Pass the same algorithm
    /// this driver has been stepping.
    #[must_use]
    pub fn work_counters<A>(&self, algorithm: &A) -> WorkCounters
    where
        A: OnlineAlgorithm + ?Sized,
    {
        let mut counters = algorithm.work_counters();
        counters.requests += self.requests;
        counters.audited_steps += self.audited_steps;
        counters.journal_records += self.journal_records;
        counters
    }

    /// Draws the next request from `workload` and serves it.
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step_generated<A, W>(
        &mut self,
        algorithm: &mut A,
        workload: &mut W,
        observer: &mut dyn Observer,
    ) -> StepEvent
    where
        A: OnlineAlgorithm + ?Sized,
        W: Workload + ?Sized,
    {
        let request = workload.next_request(algorithm.placement());
        self.step(algorithm, request, observer)
    }

    /// Serves one request: charges communication from the current
    /// placement, lets the algorithm react, charges reported
    /// migrations, audits, and emits the [`StepEvent`].
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step<A>(
        &mut self,
        algorithm: &mut A,
        request: Edge,
        observer: &mut dyn Observer,
    ) -> StepEvent
    where
        A: OnlineAlgorithm + ?Sized,
    {
        let event = self.step_inner(algorithm, request);
        observer.on_step(&event);
        event
    }

    /// Serves an explicit request batch, emitting one [`BatchEvent`] to
    /// `observer` (no per-step events). Under full auditing every
    /// request still runs the journal and capacity audits.
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step_batch<A>(
        &mut self,
        algorithm: &mut A,
        requests: &[Edge],
        observer: &mut dyn Observer,
    ) -> BatchEvent
    where
        A: OnlineAlgorithm + ?Sized,
    {
        let mut event = BatchEvent::at(self.report.steps);
        self.step_batch_inner(algorithm, requests, &mut event);
        observer.on_batch(&event);
        event
    }

    /// Serves `steps` workload-generated requests as one batch,
    /// emitting one [`BatchEvent`].
    ///
    /// Oblivious workloads are pre-generated chunk-wise through
    /// [`Workload::fill_batch`] (one virtual call per chunk); adaptive
    /// workloads ([`Workload::is_adaptive`]) fall back to per-request
    /// generation so the adversary sees exactly the placements it would
    /// see unbatched.
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step_batch_generated<A, W>(
        &mut self,
        algorithm: &mut A,
        workload: &mut W,
        steps: u64,
        observer: &mut dyn Observer,
    ) -> BatchEvent
    where
        A: OnlineAlgorithm + ?Sized,
        W: Workload + ?Sized,
    {
        let mut event = BatchEvent::at(self.report.steps);
        if workload.is_adaptive() {
            for _ in 0..steps {
                let request = workload.next_request(algorithm.placement());
                let step = self.step_inner(algorithm, request);
                accumulate(&mut event, &step);
            }
        } else {
            let mut buf = std::mem::take(&mut self.gen_buf);
            let mut left = steps;
            while left > 0 {
                let take = left.min(GEN_CHUNK);
                buf.clear();
                workload.fill_batch(algorithm.placement(), take, &mut buf);
                debug_assert_eq!(buf.len() as u64, take, "fill_batch under-filled");
                self.step_batch_inner(algorithm, &buf, &mut event);
                left -= take;
            }
            self.gen_buf = buf;
        }
        observer.on_batch(&event);
        event
    }

    /// Batch body shared by [`Driver::step_batch`] and
    /// [`Driver::step_batch_generated`]: accounts the requests without
    /// dispatching any observer event.
    fn step_batch_inner<A>(&mut self, algorithm: &mut A, requests: &[Edge], event: &mut BatchEvent)
    where
        A: OnlineAlgorithm + ?Sized,
    {
        match self.audit {
            AuditLevel::Full { .. } => {
                // Full audit is inherently per-request: the journal is
                // drained and the capacity limit checked after every
                // serve, exactly as in the unbatched path.
                for &request in requests {
                    let step = self.step_inner(algorithm, request);
                    accumulate(event, &step);
                }
            }
            AuditLevel::None => {
                if algorithm.placement().journaling() {
                    algorithm.placement_mut().set_journaling(false);
                }
                let out = algorithm.serve_batch(requests);
                self.report.ledger.communication += out.charged;
                self.report.ledger.migration += out.migrations;
                self.report.steps += requests.len() as u64;
                self.requests += requests.len() as u64;
                self.report.max_load_seen = self.report.max_load_seen.max(out.max_load_seen);
                event.served += requests.len() as u64;
                event.charged += out.charged;
                event.migrations += out.migrations;
                event.max_load = event.max_load.max(out.max_load_seen);
            }
        }
    }

    /// One fully accounted step, without observer dispatch.
    fn step_inner<A>(&mut self, algorithm: &mut A, request: Edge) -> StepEvent
    where
        A: OnlineAlgorithm + ?Sized,
    {
        let charged = algorithm.placement().is_cut(request);
        if charged {
            self.report.ledger.communication += 1;
        }
        match self.audit {
            AuditLevel::Full { .. } => {
                // Arm the journal so this step's migrations are
                // recorded (idempotent; re-armed every step because
                // snapshot restores replace the placement wholesale).
                let placement = algorithm.placement_mut();
                if !placement.journaling() {
                    placement.set_journaling(true);
                }
                debug_assert!(
                    placement.journal().is_empty(),
                    "journal must be drained between steps"
                );
            }
            AuditLevel::None => {
                // Disarm journaling left over from an earlier audited
                // driver so unaudited serving never buffers records.
                if algorithm.placement().journaling() {
                    algorithm.placement_mut().set_journaling(false);
                }
            }
        }
        let step_index = self.report.steps;
        let reported = algorithm.serve(request);
        self.report.ledger.migration += reported;
        self.report.steps += 1;
        self.requests += 1;

        let max_load = algorithm.placement().max_load();
        self.report.max_load_seen = self.report.max_load_seen.max(max_load);

        let mut violated = false;
        if let AuditLevel::Full { load_limit } = self.audit {
            self.audited_steps += 1;
            self.verify_journal(algorithm.placement(), reported);
            algorithm.placement_mut().clear_journal();
            if max_load > load_limit {
                self.report.capacity_violations += 1;
                violated = true;
            }
        }

        StepEvent {
            step: step_index,
            request,
            charged,
            migrations: reported,
            max_load,
            violated,
        }
    }

    /// The O(changed) migration audit: the reported count must equal the
    /// journaled moves exactly, the journaled moves must chain (a
    /// process re-moving within one step must depart from where the
    /// previous record left it), and every chain must end where the
    /// placement actually has the process.
    fn verify_journal(&mut self, placement: &Placement, reported: u64) {
        let journal = placement.journal();
        let actual = journal.len() as u64;
        self.journal_records += actual;
        assert!(
            reported >= actual,
            "algorithm under-reported migrations: reported {reported}, actual {actual}"
        );
        assert!(
            reported <= actual,
            "algorithm over-reported migrations: reported {reported}, actual {actual}"
        );
        self.chain.clear();
        for rec in journal {
            assert!(
                rec.from != rec.to,
                "journal records a no-op move of process {}",
                rec.process.0
            );
            if let Some(&prev_to) = self.chain.get(&rec.process.0) {
                assert!(
                    prev_to == rec.from.0,
                    "journal chain broken for process {}: departs server {} but was last \
                     placed on {}",
                    rec.process.0,
                    rec.from.0,
                    prev_to
                );
            }
            self.chain.insert(rec.process.0, rec.to.0);
        }
        for (&p, &s) in &self.chain {
            assert!(
                placement.server(Process(p)).0 == s,
                "journal end position of process {p} (server {s}) disagrees with the \
                 placement (server {})",
                placement.server(Process(p)).0
            );
        }
    }

    /// Ends the run: emits `on_finish` and yields the final report.
    #[must_use]
    pub fn finish(self, observer: &mut dyn Observer) -> RunReport {
        observer.on_finish(&self.report);
        self.report
    }
}

fn accumulate(event: &mut BatchEvent, step: &StepEvent) {
    event.served += 1;
    event.charged += u64::from(step.charged);
    event.migrations += step.migrations;
    event.max_load = event.max_load.max(step.max_load);
    event.violations += u64::from(step.violated);
}

/// The pre-journal reference auditor: clones the placement before each
/// serve and verifies the reported migrations against the O(n) Hamming
/// diff, exactly as `Driver::step` did before the delta-driven refactor.
///
/// Kept as the independent ground truth for the differential-audit
/// property tests (`tests/differential_audit.rs`): on any honest
/// algorithm, the journal audit and this reference must agree
/// step-for-step. Not used on any hot path.
#[derive(Debug, Default)]
pub struct StrictAuditor {
    scratch: Option<Placement>,
}

impl StrictAuditor {
    /// A fresh reference auditor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures the pre-serve placement (clone into a reused scratch).
    pub fn arm(&mut self, placement: &Placement) {
        match &mut self.scratch {
            Some(prev) => prev.clone_from(placement),
            None => self.scratch = Some(placement.clone()),
        }
    }

    /// Verifies `reported` against the Hamming distance between the
    /// armed snapshot and `placement`; returns that distance.
    ///
    /// # Panics
    /// Panics if [`StrictAuditor::arm`] was never called, or if the
    /// algorithm under-reported (`reported <` actual diff) — the exact
    /// strictness the old driver enforced.
    pub fn verify(&self, placement: &Placement, reported: u64) -> u64 {
        let actual = self
            .scratch
            .as_ref()
            .expect("StrictAuditor::arm before verify")
            .migration_distance(placement);
        assert!(
            reported >= actual,
            "algorithm under-reported migrations: reported {reported}, actual {actual}"
        );
        actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Sequential;
    use crate::{Process, RingInstance, Server};

    /// A do-nothing algorithm that keeps the initial placement.
    struct Lazy {
        placement: Placement,
    }

    impl OnlineAlgorithm for Lazy {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn placement_mut(&mut self) -> &mut Placement {
            &mut self.placement
        }

        fn serve(&mut self, _request: Edge) -> u64 {
            0
        }

        fn name(&self) -> &'static str {
            "lazy"
        }
    }

    /// Collocates the endpoints of every requested cut edge by moving
    /// the counter-clockwise endpoint (deliberately ignores capacity).
    struct GreedyPull {
        placement: Placement,
    }

    impl OnlineAlgorithm for GreedyPull {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn placement_mut(&mut self) -> &mut Placement {
            &mut self.placement
        }

        fn serve(&mut self, request: Edge) -> u64 {
            let (a, b) = self.placement.instance().endpoints(request);
            if self.placement.server(a) != self.placement.server(b) {
                let target = self.placement.server(b);
                u64::from(self.placement.migrate(a, target))
            } else {
                0
            }
        }
    }

    #[test]
    fn lazy_pays_communication_only() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = Lazy {
            placement: Placement::contiguous(&inst),
        };
        // One full ring pass: hits the 3 cut edges exactly once each.
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 12, AuditLevel::Full { load_limit: 4 });
        assert_eq!(report.ledger.communication, 3);
        assert_eq!(report.ledger.migration, 0);
        assert_eq!(report.capacity_violations, 0);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    fn greedy_migrations_are_charged_and_audited() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let trace = vec![Edge(3), Edge(3), Edge(2)];
        let report = run_trace(&mut alg, &trace, AuditLevel::Full { load_limit: 12 });
        // First request to edge 3 is cut (comm 1) and pulls p3 over
        // (mig 1). Second request: no longer cut. Third request edge 2 is
        // now cut (p2 on server 0, p3 on server 1): comm 1, mig 1.
        assert_eq!(report.ledger.communication, 2);
        assert_eq!(report.ledger.migration, 2);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn capacity_violations_are_counted() {
        let inst = RingInstance::new(6, 3, 2);
        let mut p = Placement::contiguous(&inst);
        // Overload server 0 from the start.
        p.migrate(Process(2), Server(0));
        p.migrate(Process(3), Server(0));
        let mut alg = Lazy { placement: p };
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 5, AuditLevel::Full { load_limit: 3 });
        assert_eq!(report.capacity_violations, 5);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    #[should_panic(expected = "under-reported")]
    fn under_reporting_is_caught() {
        struct Cheater {
            placement: Placement,
        }
        impl OnlineAlgorithm for Cheater {
            fn placement(&self) -> &Placement {
                &self.placement
            }
            fn placement_mut(&mut self) -> &mut Placement {
                &mut self.placement
            }
            fn serve(&mut self, _r: Edge) -> u64 {
                self.placement.migrate(Process(0), Server(1));
                0 // lies
            }
        }
        let inst = RingInstance::new(6, 3, 2);
        let mut alg = Cheater {
            placement: Placement::contiguous(&inst),
        };
        let _ = run_trace(&mut alg, &[Edge(0)], AuditLevel::Full { load_limit: 10 });
    }

    #[test]
    #[should_panic(expected = "over-reported")]
    fn over_reporting_is_caught() {
        struct Braggart {
            placement: Placement,
        }
        impl OnlineAlgorithm for Braggart {
            fn placement(&self) -> &Placement {
                &self.placement
            }
            fn placement_mut(&mut self) -> &mut Placement {
                &mut self.placement
            }
            fn serve(&mut self, _r: Edge) -> u64 {
                2 // claims migrations it never made
            }
        }
        let inst = RingInstance::new(6, 3, 2);
        let mut alg = Braggart {
            placement: Placement::contiguous(&inst),
        };
        let _ = run_trace(&mut alg, &[Edge(0)], AuditLevel::Full { load_limit: 10 });
    }

    #[test]
    fn batched_runs_match_per_step_runs_exactly() {
        // Same seeds, same workload, every batch size: identical report.
        let inst = RingInstance::new(12, 3, 4);
        let baseline = {
            let mut alg = GreedyPull {
                placement: Placement::contiguous(&inst),
            };
            let mut w = crate::workload::UniformRandom::new(7);
            run(&mut alg, &mut w, 500, AuditLevel::Full { load_limit: 12 })
        };
        for (batch, audit) in [
            (1u64, AuditLevel::Full { load_limit: 12 }),
            (7, AuditLevel::Full { load_limit: 12 }),
            (500, AuditLevel::Full { load_limit: 12 }),
            (64, AuditLevel::None),
        ] {
            let mut alg = GreedyPull {
                placement: Placement::contiguous(&inst),
            };
            let mut w = crate::workload::UniformRandom::new(7);
            let report = run_batch(&mut alg, &mut w, 500, batch, audit, &mut NoopObserver);
            assert_eq!(report.ledger, baseline.ledger, "batch={batch}");
            assert_eq!(report.steps, baseline.steps, "batch={batch}");
            assert_eq!(
                report.max_load_seen, baseline.max_load_seen,
                "batch={batch}"
            );
        }
    }

    #[test]
    fn batch_events_sum_to_the_report() {
        struct Sum {
            served: u64,
            cost: u64,
            batches: u64,
            steps_seen: u64,
        }
        impl Observer for Sum {
            fn on_step(&mut self, _e: &StepEvent) {
                self.steps_seen += 1;
            }
            fn on_batch(&mut self, e: &BatchEvent) {
                self.served += e.served;
                self.cost += e.cost_delta();
                self.batches += 1;
            }
        }
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let mut w = crate::workload::UniformRandom::new(3);
        let mut sum = Sum {
            served: 0,
            cost: 0,
            batches: 0,
            steps_seen: 0,
        };
        let report = run_batch(
            &mut alg,
            &mut w,
            300,
            64,
            AuditLevel::Full { load_limit: 12 },
            &mut sum,
        );
        assert_eq!(sum.served, report.steps);
        assert_eq!(sum.cost, report.ledger.total());
        assert_eq!(sum.batches, 5); // ⌈300/64⌉
        assert_eq!(sum.steps_seen, 0, "batched runs never emit step events");
    }

    #[test]
    fn adaptive_workloads_are_generated_per_request_in_batches() {
        // The cut-chaser inspects the live placement; batching must not
        // change what it sees, so batched == unbatched bit-for-bit.
        let inst = RingInstance::new(12, 3, 4);
        let mut a = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let mut wa = crate::workload::CutChaser::new();
        let unbatched = run(&mut a, &mut wa, 200, AuditLevel::None);
        let mut b = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let mut wb = crate::workload::CutChaser::new();
        let batched = run_batch(
            &mut b,
            &mut wb,
            200,
            50,
            AuditLevel::None,
            &mut NoopObserver,
        );
        assert_eq!(unbatched.ledger, batched.ledger);
        assert_eq!(
            a.placement.assignment(),
            b.placement.assignment(),
            "final placements must coincide"
        );
    }

    #[test]
    fn work_counters_tie_out_with_the_ledger_under_full_audit() {
        // Every journaled record the audit verified is exactly one
        // charged migration, every step is audited, and the driver's
        // request count equals the report's.
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let mut w = crate::workload::UniformRandom::new(7);
        let (report, counters) = run_counted(
            &mut alg,
            &mut w,
            400,
            AuditLevel::Full { load_limit: 12 },
            &mut NoopObserver,
        );
        assert_eq!(counters.requests, report.steps);
        assert_eq!(counters.audited_steps, report.steps);
        assert_eq!(counters.journal_records, report.ledger.migration);
        assert_eq!(counters.migrations, report.ledger.migration);
        assert!(counters.max_load_updates > 0, "loads churned");
    }

    #[test]
    fn work_counters_are_deterministic_across_batched_reruns() {
        let inst = RingInstance::new(12, 3, 4);
        let run_once = |batch: u64, audit: AuditLevel| {
            let mut alg = GreedyPull {
                placement: Placement::contiguous(&inst),
            };
            let mut w = crate::workload::UniformRandom::new(3);
            run_batch_counted(&mut alg, &mut w, 500, batch, audit, &mut NoopObserver)
        };
        for audit in [AuditLevel::Full { load_limit: 12 }, AuditLevel::None] {
            let (report_a, counters_a) = run_once(64, audit);
            let (report_b, counters_b) = run_once(64, audit);
            assert_eq!(report_a, report_b);
            assert_eq!(counters_a, counters_b, "same seed → identical counters");
            assert_eq!(counters_a.requests, 500);
        }
        // Unaudited batches skip the journal audit entirely.
        let (_, unaudited) = run_once(64, AuditLevel::None);
        assert_eq!(unaudited.audited_steps, 0);
        assert_eq!(unaudited.journal_records, 0);
    }

    #[test]
    fn strict_auditor_matches_honest_reports() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let mut strict = StrictAuditor::new();
        let mut w = crate::workload::UniformRandom::new(11);
        for _ in 0..200 {
            let request = w.next_request(&alg.placement);
            strict.arm(&alg.placement);
            let reported = alg.serve(request);
            let actual = strict.verify(&alg.placement, reported);
            assert_eq!(reported, actual);
        }
    }
}
