//! The simulation driver: charges costs, audits invariants.
//!
//! The driver — not the algorithm — is the source of truth for cost
//! accounting. For every request it
//!
//! 1. charges communication cost from the *current* placement ("serving
//!    a communication request incurs cost of exactly 1, if both
//!    requested processes are located on different servers"),
//! 2. lets the algorithm react (migrations happen here),
//! 3. charges the migrations the algorithm reports and, in
//!    [`AuditLevel::Full`], cross-checks them against the actual
//!    placement diff,
//! 4. audits the capacity constraint `max load ≤ limit`.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::workload::Workload;
use crate::{CostLedger, Edge, Placement};

/// An online algorithm for ring-demand balanced partitioning.
///
/// Implementations maintain their own [`Placement`] and react to one
/// request at a time. They must report the number of migrations each
/// request triggered; the driver verifies the report in
/// [`AuditLevel::Full`] runs.
pub trait OnlineAlgorithm {
    /// The algorithm's current placement of processes onto servers.
    fn placement(&self) -> &Placement;

    /// Serves one communication request and returns the number of
    /// process migrations performed while serving it.
    fn serve(&mut self, request: Edge) -> u64;

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str {
        "online"
    }

    /// Exports a serializable snapshot of every piece of mutable state,
    /// or `None` if the algorithm does not support checkpointing.
    ///
    /// The contract (shared with [`Workload::export_state`]): restoring
    /// the snapshot into a *freshly constructed* instance — same
    /// instance, same configuration, same seed — via
    /// [`Self::restore_state`] must make every subsequent `serve` call
    /// behave bit-identically to the instance the snapshot was taken
    /// from. Construction-time randomness (e.g. a random shift) need
    /// not be captured separately as long as the snapshot overwrites
    /// everything it influenced.
    fn export_state(&self) -> Option<Value> {
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an
    /// identically-configured instance.
    ///
    /// # Errors
    /// Returns a [`DeError`] if the algorithm does not support
    /// checkpointing or the snapshot does not fit this instance. On
    /// error the instance may have been partially updated and must be
    /// discarded — restore into a freshly constructed instance.
    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Err(DeError(format!(
            "algorithm `{}` does not support snapshot/restore",
            self.name()
        )))
    }
}

/// How strictly the driver validates each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditLevel {
    /// Verify reported migrations against a placement diff (O(n)/step)
    /// and check the capacity limit after every step.
    Full {
        /// Maximum allowed server load, typically `⌈α·k⌉` for the
        /// algorithm's resource-augmentation factor `α`.
        load_limit: u32,
    },
    /// Charge costs only; no per-step invariant checks (for throughput
    /// benchmarks).
    None,
}

/// Outcome of a simulation run.
///
/// Reports are self-describing when serialized: the driver captures the
/// algorithm and workload names from their traits, so a persisted report
/// records what produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the algorithm that was driven ([`OnlineAlgorithm::name`]).
    pub algorithm: String,
    /// Name of the request source ([`Workload::name`], or `"trace"` for
    /// [`run_trace`] replays).
    pub workload: String,
    /// Total communication + migration costs.
    pub ledger: CostLedger,
    /// Requests served.
    pub steps: u64,
    /// Largest server load ever observed (after serving each request).
    pub max_load_seen: u32,
    /// Steps on which the load limit was exceeded (only counted under
    /// [`AuditLevel::Full`]).
    pub capacity_violations: u64,
}

impl RunReport {
    /// An empty report carrying the given provenance names.
    #[must_use]
    pub fn new(algorithm: impl Into<String>, workload: impl Into<String>) -> Self {
        Self {
            algorithm: algorithm.into(),
            workload: workload.into(),
            ledger: CostLedger::new(),
            steps: 0,
            max_load_seen: 0,
            capacity_violations: 0,
        }
    }
}

/// What the driver observed while serving one request. Emitted to
/// [`Observer::on_step`] after the step's costs were charged and its
/// audits ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEvent {
    /// 0-based index of the step within the run.
    pub step: u64,
    /// The requested edge.
    pub request: Edge,
    /// Whether communication cost 1 was charged (the edge was cut at
    /// request time).
    pub charged: bool,
    /// Migrations the algorithm reported for this step (the migration
    /// cost delta).
    pub migrations: u64,
    /// Maximum server load after serving the request.
    pub max_load: u32,
    /// Whether this step exceeded the load limit (always `false` under
    /// [`AuditLevel::None`]).
    pub violated: bool,
}

impl StepEvent {
    /// The step's contribution to the total cost
    /// (`communication + migration` delta).
    #[must_use]
    pub fn cost_delta(&self) -> u64 {
        u64::from(self.charged) + self.migrations
    }
}

/// A streaming consumer of driver events.
///
/// Observers see every step as it happens — per-step cost curves, CSV
/// emission, load head-room tracking — instead of only the end-of-run
/// [`RunReport`]. They are passive: an observer cannot alter costs,
/// audits, or the algorithm's behaviour. Built-in implementations live
/// in [`crate::observers`].
pub trait Observer {
    /// Called once per request, after costs were charged and audits ran.
    fn on_step(&mut self, _event: &StepEvent) {}

    /// Called once when the run completes, with the final report.
    fn on_finish(&mut self, _report: &RunReport) {}
}

/// The do-nothing observer ([`run`] and [`run_trace`] use it).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Runs `algorithm` against `workload` for `steps` requests.
///
/// # Panics
/// Panics under [`AuditLevel::Full`] if the algorithm under-reports its
/// migrations (reported < actual placement diff).
pub fn run<A, W>(algorithm: &mut A, workload: &mut W, steps: u64, audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    run_observed(algorithm, workload, steps, audit, &mut NoopObserver)
}

/// Runs `algorithm` against `workload`, streaming a [`StepEvent`] per
/// request to `observer`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_observed<A, W>(
    algorithm: &mut A,
    workload: &mut W,
    steps: u64,
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
    W: Workload + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), workload.name(), audit);
    for _ in 0..steps {
        driver.step_generated(algorithm, workload, observer);
    }
    driver.finish(observer)
}

/// Replays a fixed request trace against `algorithm`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace<A>(algorithm: &mut A, requests: &[Edge], audit: AuditLevel) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
{
    run_trace_observed(algorithm, requests, audit, &mut NoopObserver)
}

/// Replays a fixed request trace, streaming a [`StepEvent`] per request
/// to `observer`.
///
/// # Panics
/// Same contract as [`run`].
pub fn run_trace_observed<A>(
    algorithm: &mut A,
    requests: &[Edge],
    audit: AuditLevel,
    observer: &mut dyn Observer,
) -> RunReport
where
    A: OnlineAlgorithm + ?Sized,
{
    let mut driver = Driver::new(algorithm.name(), "trace", audit);
    for &request in requests {
        driver.step(algorithm, request, observer);
    }
    driver.finish(observer)
}

/// The incremental driver: the referee state of a run in flight.
///
/// [`run_observed`] and [`run_trace_observed`] are thin loops over
/// this; long-lived callers (the serve subsystem's sessions) hold a
/// `Driver` open and feed it requests as they arrive. Cost charging and
/// auditing are identical in both shapes — a run assembled from any
/// interleaving of [`Driver::step`] calls produces the same
/// [`RunReport`] as the equivalent batch run.
///
/// A driver can also be [resumed](Driver::resume) from a persisted
/// [`RunReport`], which continues the accounting exactly where the
/// report left off (the snapshot/restore path).
#[derive(Debug, Clone)]
pub struct Driver {
    report: RunReport,
    audit: AuditLevel,
    /// Scratch placement reused across steps to avoid an allocation per
    /// step under full auditing. Pure cache — never part of a snapshot.
    scratch: Option<Placement>,
}

impl Driver {
    /// A fresh driver for the named algorithm × workload pair.
    #[must_use]
    pub fn new(
        algorithm: impl Into<String>,
        workload: impl Into<String>,
        audit: AuditLevel,
    ) -> Self {
        Self {
            report: RunReport::new(algorithm, workload),
            audit,
            scratch: None,
        }
    }

    /// Resumes accounting from a mid-run report (snapshot restore).
    #[must_use]
    pub fn resume(report: RunReport, audit: AuditLevel) -> Self {
        Self {
            report,
            audit,
            scratch: None,
        }
    }

    /// The audit level every step runs under.
    #[must_use]
    pub fn audit(&self) -> AuditLevel {
        self.audit
    }

    /// The accumulated report so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Draws the next request from `workload` and serves it.
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step_generated<A, W>(
        &mut self,
        algorithm: &mut A,
        workload: &mut W,
        observer: &mut dyn Observer,
    ) -> StepEvent
    where
        A: OnlineAlgorithm + ?Sized,
        W: Workload + ?Sized,
    {
        let request = workload.next_request(algorithm.placement());
        self.step(algorithm, request, observer)
    }

    /// Serves one request: charges communication from the current
    /// placement, lets the algorithm react, charges reported
    /// migrations, audits, and emits the [`StepEvent`].
    ///
    /// # Panics
    /// Same contract as [`run`].
    pub fn step<A>(
        &mut self,
        algorithm: &mut A,
        request: Edge,
        observer: &mut dyn Observer,
    ) -> StepEvent
    where
        A: OnlineAlgorithm + ?Sized,
    {
        let charged = algorithm.placement().is_cut(request);
        if charged {
            self.report.ledger.communication += 1;
        }
        if let AuditLevel::Full { .. } = self.audit {
            // Reuse the scratch placement to avoid an allocation per step.
            match &mut self.scratch {
                Some(prev) => prev.clone_from(algorithm.placement()),
                None => self.scratch = Some(algorithm.placement().clone()),
            }
        }
        let step_index = self.report.steps;
        let reported = algorithm.serve(request);
        self.report.ledger.migration += reported;
        self.report.steps += 1;

        let max_load = algorithm.placement().max_load();
        self.report.max_load_seen = self.report.max_load_seen.max(max_load);

        let mut violated = false;
        if let AuditLevel::Full { load_limit } = self.audit {
            let actual = self
                .scratch
                .as_ref()
                .expect("scratch placement set above")
                .migration_distance(algorithm.placement());
            assert!(
                reported >= actual,
                "algorithm under-reported migrations: reported {reported}, actual {actual}"
            );
            if max_load > load_limit {
                self.report.capacity_violations += 1;
                violated = true;
            }
        }

        let event = StepEvent {
            step: step_index,
            request,
            charged,
            migrations: reported,
            max_load,
            violated,
        };
        observer.on_step(&event);
        event
    }

    /// Ends the run: emits `on_finish` and yields the final report.
    #[must_use]
    pub fn finish(self, observer: &mut dyn Observer) -> RunReport {
        observer.on_finish(&self.report);
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Sequential;
    use crate::{Process, RingInstance, Server};

    /// A do-nothing algorithm that keeps the initial placement.
    struct Lazy {
        placement: Placement,
    }

    impl OnlineAlgorithm for Lazy {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn serve(&mut self, _request: Edge) -> u64 {
            0
        }

        fn name(&self) -> &'static str {
            "lazy"
        }
    }

    /// Collocates the endpoints of every requested cut edge by moving
    /// the counter-clockwise endpoint (deliberately ignores capacity).
    struct GreedyPull {
        placement: Placement,
    }

    impl OnlineAlgorithm for GreedyPull {
        fn placement(&self) -> &Placement {
            &self.placement
        }

        fn serve(&mut self, request: Edge) -> u64 {
            let (a, b) = self.placement.instance().endpoints(request);
            if self.placement.server(a) != self.placement.server(b) {
                let target = self.placement.server(b);
                u64::from(self.placement.migrate(a, target))
            } else {
                0
            }
        }
    }

    #[test]
    fn lazy_pays_communication_only() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = Lazy {
            placement: Placement::contiguous(&inst),
        };
        // One full ring pass: hits the 3 cut edges exactly once each.
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 12, AuditLevel::Full { load_limit: 4 });
        assert_eq!(report.ledger.communication, 3);
        assert_eq!(report.ledger.migration, 0);
        assert_eq!(report.capacity_violations, 0);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    fn greedy_migrations_are_charged_and_audited() {
        let inst = RingInstance::new(12, 3, 4);
        let mut alg = GreedyPull {
            placement: Placement::contiguous(&inst),
        };
        let trace = vec![Edge(3), Edge(3), Edge(2)];
        let report = run_trace(&mut alg, &trace, AuditLevel::Full { load_limit: 12 });
        // First request to edge 3 is cut (comm 1) and pulls p3 over
        // (mig 1). Second request: no longer cut. Third request edge 2 is
        // now cut (p2 on server 0, p3 on server 1): comm 1, mig 1.
        assert_eq!(report.ledger.communication, 2);
        assert_eq!(report.ledger.migration, 2);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn capacity_violations_are_counted() {
        let inst = RingInstance::new(6, 3, 2);
        let mut p = Placement::contiguous(&inst);
        // Overload server 0 from the start.
        p.migrate(Process(2), Server(0));
        p.migrate(Process(3), Server(0));
        let mut alg = Lazy { placement: p };
        let mut w = Sequential::new();
        let report = run(&mut alg, &mut w, 5, AuditLevel::Full { load_limit: 3 });
        assert_eq!(report.capacity_violations, 5);
        assert_eq!(report.max_load_seen, 4);
    }

    #[test]
    #[should_panic(expected = "under-reported")]
    fn under_reporting_is_caught() {
        struct Cheater {
            placement: Placement,
        }
        impl OnlineAlgorithm for Cheater {
            fn placement(&self) -> &Placement {
                &self.placement
            }
            fn serve(&mut self, _r: Edge) -> u64 {
                self.placement.migrate(Process(0), Server(1));
                0 // lies
            }
        }
        let inst = RingInstance::new(6, 3, 2);
        let mut alg = Cheater {
            placement: Placement::contiguous(&inst),
        };
        let _ = run_trace(&mut alg, &[Edge(0)], AuditLevel::Full { load_limit: 10 });
    }
}
