//! Ring-demand balanced graph partitioning: the problem substrate.
//!
//! This crate implements Section 2 (model) of Räcke, Schmid & Zabrodin,
//! *"Polylog-Competitive Algorithms for Dynamic Balanced Graph
//! Partitioning for Ring Demands"* (SPAA 2023), plus everything a
//! simulation study needs around it:
//!
//! * [`RingInstance`] — `n` processes on a cycle, `ℓ` servers of
//!   capacity `k`, with all modular index arithmetic in one place.
//! * [`Placement`] — a process→server assignment with incrementally
//!   maintained server loads, cut-edge queries and migration distance.
//! * [`CostLedger`] — communication + migration cost accounting exactly
//!   as the model defines it (a request costs 1 iff its endpoints are on
//!   different servers *at request time*; each process move costs 1).
//! * [`OnlineAlgorithm`] / [`run`] — the simulation driver. The driver —
//!   not the algorithm — charges costs and audits capacity, so cost
//!   accounting cannot be gamed by an algorithm implementation.
//! * [`Observer`] / [`observers`] — a streaming view of every driver
//!   step ([`StepEvent`]): cost curves, CSV emission, load head-room and
//!   trace recording without touching the hot loop's accounting.
//! * [`workload`] — request generators: the ML ring-allreduce pattern the
//!   paper's introduction motivates, plus Zipf, sliding windows, bursts,
//!   rotating hotspots, random walks, and *adaptive adversaries* (the
//!   cut-chaser used in the Ω(k) lower-bound experiments).
//! * [`adversary`] — the [`AdaptiveAdversary`] trait (observe the
//!   placement, pick the next request) with the chaser, greedy
//!   cut-maximizer and separation-chaser strategies behind the
//!   adversary-search harness.
//! * [`family`] — related-work cost-model families (online bisection
//!   with ring demands; the generalized learning model) charged by
//!   reweighting driver events, no algorithm changes required.
//! * [`trace`] — (de)serialization of recorded request traces.
//! * [`WorkCounters`] — the always-on deterministic work-counter ledger
//!   (requests, migrations, audited steps, …) the perf gate diffs
//!   instead of noisy wall-clock.

pub mod adversary;
mod counters;
pub mod family;
mod instance;
mod ledger;
pub mod observers;
mod placement;
pub mod seed;
mod sim;
pub mod trace;
pub mod workload;

pub use adversary::{AdaptiveAdversary, AdversaryWorkload, GreedyCutMaximizer, SeparationChaser};
pub use counters::{WorkCounters, NUM_WORK_METRICS};
pub use family::{CostModel, FamilyCostObserver};
pub use instance::{Edge, Process, RingInstance, Segment, Server};
pub use ledger::CostLedger;
pub use placement::{JournalIter, MigrationJournal, MigrationRecord, Placement};
pub use seed::split_mix64;
pub use sim::{
    run, run_batch, run_batch_counted, run_counted, run_observed, run_trace, run_trace_counted,
    run_trace_observed, AuditLevel, BatchEvent, BatchOutcome, Driver, NoopObserver, Observer,
    OnlineAlgorithm, RunReport, StepEvent, StrictAuditor,
};
pub use workload::Workload;
