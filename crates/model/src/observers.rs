//! Built-in [`Observer`] implementations for the simulation driver.
//!
//! Observers stream per-step information out of [`crate::run_observed`] /
//! [`crate::run_trace_observed`] while the run is in flight, replacing
//! ad-hoc "re-run and diff ledgers" instrumentation:
//!
//! * [`CostCurve`] — samples the cumulative cost ledger every `every`
//!   steps (the per-step cost curves the experiment figures plot);
//! * [`CsvEmitter`] — writes one CSV row per step to any [`Write`] sink;
//! * [`LoadHeadroom`] — tracks the minimum head-room between observed
//!   load and a limit (how close a run came to violating its bound);
//! * [`TraceRecorder`] — records the served requests (this is how the
//!   CLI captures adaptive-adversary traces for `--save-trace`);
//! * [`Fanout`] — broadcasts events to several observers.

use std::io::Write;

use crate::sim::{Observer, RunReport, StepEvent};
use crate::{CostLedger, Edge};

/// One sample of the cumulative cost curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CurvePoint {
    /// Steps served so far (1-based: the sample is taken *after* this
    /// many requests).
    pub steps: u64,
    /// Cumulative ledger at that point.
    pub ledger: CostLedger,
}

/// Samples the cumulative cost ledger every `every` steps, plus a final
/// sample at the end of the run.
#[derive(Debug, Clone)]
pub struct CostCurve {
    every: u64,
    running: CostLedger,
    last_sampled: u64,
    samples: Vec<CurvePoint>,
}

impl CostCurve {
    /// Creates a curve sampling every `every` steps.
    ///
    /// # Panics
    /// Panics if `every == 0`.
    #[must_use]
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "sampling interval must be positive");
        Self {
            every,
            running: CostLedger::new(),
            last_sampled: 0,
            samples: Vec::new(),
        }
    }

    /// The samples collected so far.
    #[must_use]
    pub fn samples(&self) -> &[CurvePoint] {
        &self.samples
    }

    /// Consumes the observer, returning its samples.
    #[must_use]
    pub fn into_samples(self) -> Vec<CurvePoint> {
        self.samples
    }
}

impl Observer for CostCurve {
    fn on_step(&mut self, event: &StepEvent) {
        self.running.communication += u64::from(event.charged);
        self.running.migration += event.migrations;
        let served = event.step + 1;
        if served.is_multiple_of(self.every) {
            self.last_sampled = served;
            self.samples.push(CurvePoint {
                steps: served,
                ledger: self.running,
            });
        }
    }

    fn on_finish(&mut self, report: &RunReport) {
        if report.steps > self.last_sampled {
            self.last_sampled = report.steps;
            self.samples.push(CurvePoint {
                steps: report.steps,
                ledger: self.running,
            });
        }
    }
}

/// Writes one CSV row per step (`step,edge,comm,mig,max_load,violated`)
/// to a [`Write`] sink.
///
/// The header is written on the first step. Experiments fail loudly:
/// I/O errors panic, matching the harness's CSV conventions.
#[derive(Debug)]
pub struct CsvEmitter<W: Write> {
    out: W,
    started: bool,
}

impl<W: Write> CsvEmitter<W> {
    /// Creates an emitter writing to `out`.
    pub fn new(out: W) -> Self {
        Self {
            out,
            started: false,
        }
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Panics
    /// Panics if the flush fails.
    pub fn into_inner(mut self) -> W {
        self.out.flush().expect("flush step csv");
        self.out
    }
}

impl<W: Write> Observer for CsvEmitter<W> {
    fn on_step(&mut self, event: &StepEvent) {
        if !self.started {
            writeln!(self.out, "step,edge,comm,mig,max_load,violated").expect("write csv header");
            self.started = true;
        }
        writeln!(
            self.out,
            "{},{},{},{},{},{}",
            event.step,
            event.request.0,
            u64::from(event.charged),
            event.migrations,
            event.max_load,
            u8::from(event.violated),
        )
        .expect("write csv row");
    }

    fn on_finish(&mut self, _report: &RunReport) {
        self.out.flush().expect("flush step csv");
    }
}

/// Tracks how close the run came to a load limit: the minimum of
/// `limit - max_load` over all steps (negative if the limit was ever
/// exceeded).
#[derive(Debug, Clone, Copy)]
pub struct LoadHeadroom {
    limit: u32,
    min_headroom: Option<i64>,
    worst_step: u64,
}

impl LoadHeadroom {
    /// Creates a tracker against `limit`.
    #[must_use]
    pub fn new(limit: u32) -> Self {
        Self {
            limit,
            min_headroom: None,
            worst_step: 0,
        }
    }

    /// The limit being tracked.
    #[must_use]
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Minimum observed `limit - max_load` (`None` before any step).
    #[must_use]
    pub fn min_headroom(&self) -> Option<i64> {
        self.min_headroom
    }

    /// The step on which the minimum head-room was (first) attained.
    #[must_use]
    pub fn worst_step(&self) -> u64 {
        self.worst_step
    }
}

impl Observer for LoadHeadroom {
    fn on_step(&mut self, event: &StepEvent) {
        let headroom = i64::from(self.limit) - i64::from(event.max_load);
        if self.min_headroom.is_none_or(|m| headroom < m) {
            self.min_headroom = Some(headroom);
            self.worst_step = event.step;
        }
    }
}

/// Records the request sequence the driver served — the way to capture
/// a replayable trace from an *adaptive* workload, whose requests only
/// exist once the algorithm's placements do.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    requests: Vec<Edge>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The requests recorded so far.
    #[must_use]
    pub fn requests(&self) -> &[Edge] {
        &self.requests
    }

    /// Consumes the recorder, returning the recorded requests.
    #[must_use]
    pub fn into_requests(self) -> Vec<Edge> {
        self.requests
    }
}

impl Observer for TraceRecorder {
    fn on_step(&mut self, event: &StepEvent) {
        self.requests.push(event.request);
    }
}

/// Broadcasts every event to a set of observers, in order.
pub struct Fanout<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> Fanout<'a> {
    /// Creates a fan-out over `observers`.
    #[must_use]
    pub fn new(observers: Vec<&'a mut dyn Observer>) -> Self {
        Self { observers }
    }
}

impl Observer for Fanout<'_> {
    fn on_step(&mut self, event: &StepEvent) {
        for obs in &mut self.observers {
            obs.on_step(event);
        }
    }

    fn on_batch(&mut self, event: &crate::BatchEvent) {
        for obs in &mut self.observers {
            obs.on_batch(event);
        }
    }

    fn wants_steps(&self) -> bool {
        self.observers.iter().any(|obs| obs.wants_steps())
    }

    fn on_finish(&mut self, report: &RunReport) {
        for obs in &mut self.observers {
            obs.on_finish(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Sequential;
    use crate::{run_observed, AuditLevel, Placement, RingInstance};

    /// A placement-frozen dummy algorithm.
    struct Lazy {
        placement: Placement,
    }

    impl crate::OnlineAlgorithm for Lazy {
        fn placement(&self) -> &Placement {
            &self.placement
        }
        fn placement_mut(&mut self) -> &mut Placement {
            &mut self.placement
        }
        fn serve(&mut self, _request: Edge) -> u64 {
            0
        }
    }

    fn lazy() -> Lazy {
        Lazy {
            placement: Placement::contiguous(&RingInstance::new(12, 3, 4)),
        }
    }

    #[test]
    fn cost_curve_samples_and_finishes() {
        let mut curve = CostCurve::new(5);
        let mut alg = lazy();
        let mut w = Sequential::new();
        let report = run_observed(&mut alg, &mut w, 12, AuditLevel::None, &mut curve);
        let samples = curve.samples();
        assert_eq!(
            samples.iter().map(|s| s.steps).collect::<Vec<_>>(),
            vec![5, 10, 12],
            "samples every 5 steps plus the final point"
        );
        assert_eq!(samples.last().unwrap().ledger, report.ledger);
    }

    #[test]
    fn csv_emitter_writes_one_row_per_step() {
        let mut emitter = CsvEmitter::new(Vec::new());
        let mut alg = lazy();
        let mut w = Sequential::new();
        let _ = run_observed(&mut alg, &mut w, 4, AuditLevel::None, &mut emitter);
        let text = String::from_utf8(emitter.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 rows");
        assert_eq!(lines[0], "step,edge,comm,mig,max_load,violated");
        assert!(lines[1].starts_with("0,0,"));
    }

    #[test]
    fn load_headroom_tracks_minimum() {
        let mut head = LoadHeadroom::new(6);
        let mut alg = lazy();
        let mut w = Sequential::new();
        let _ = run_observed(
            &mut alg,
            &mut w,
            3,
            AuditLevel::Full { load_limit: 6 },
            &mut head,
        );
        // Contiguous load is 4 on every step → head-room 2 throughout.
        assert_eq!(head.min_headroom(), Some(2));
        assert_eq!(head.limit(), 6);
    }

    #[test]
    fn trace_recorder_captures_requests() {
        let mut rec = TraceRecorder::new();
        let mut alg = lazy();
        let mut w = Sequential::new();
        let _ = run_observed(&mut alg, &mut w, 3, AuditLevel::None, &mut rec);
        assert_eq!(rec.requests(), &[Edge(0), Edge(1), Edge(2)]);
        assert_eq!(rec.into_requests().len(), 3);
    }

    #[test]
    fn fanout_feeds_all_observers() {
        let mut rec = TraceRecorder::new();
        let mut curve = CostCurve::new(1);
        {
            let mut fan = Fanout::new(vec![&mut rec, &mut curve]);
            let mut alg = lazy();
            let mut w = Sequential::new();
            let _ = run_observed(&mut alg, &mut w, 2, AuditLevel::None, &mut fan);
        }
        assert_eq!(rec.requests().len(), 2);
        assert_eq!(curve.samples().len(), 2);
    }
}
