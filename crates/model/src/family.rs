//! Related-work cost-model families layered over the standard model.
//!
//! The driver ([`crate::Driver`]) charges the *standard* ring-demand
//! costs: 1 per cut request, 1 per process move. Two adjacent models
//! from the literature reweight exactly those events without changing
//! the event stream itself:
//!
//! * **Online bisection with ring demands** (Basiak, Bienkowski &
//!   Tatarczuk): two servers (`ℓ = 2`), unit communication, and a
//!   migration cost `α ≥ 1` per moved process.
//! * **Generalized learning model** (Räcke, Schmid & Zabrodin 2024):
//!   per-pair request costs — serving a cut edge `e` costs `w(e)`
//!   instead of 1 — with unit migrations.
//!
//! [`CostModel`] captures a family as `(request weights, migration
//! weight)` and [`FamilyCostObserver`] accumulates the reweighted total
//! from the driver's per-step events, leaving the driver's own ledger
//! (and every algorithm) untouched. With all weights 1 the reweighted
//! total equals the standard ledger total exactly — the reduction the
//! property suite pins.

use crate::{Edge, Observer, StepEvent};

/// A cost-model family: how much a charged request and a migration
/// cost. The *standard* model is `CostModel::standard()` — unit
/// everything.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per-edge request weights (`None` = all 1).
    request_weights: Option<Vec<u64>>,
    /// Cost per moved process.
    migration_weight: u64,
    /// Family name for reports.
    name: &'static str,
}

impl CostModel {
    /// The paper's standard model: every charged request costs 1, every
    /// moved process costs 1.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            request_weights: None,
            migration_weight: 1,
            name: "standard",
        }
    }

    /// Online bisection with ring demands: unit communication, `alpha`
    /// per moved process (Basiak et al. study `α ≥ 1`; `alpha = 1`
    /// coincides with the standard model).
    ///
    /// # Panics
    /// Panics if `alpha == 0` — a free migration makes every ratio
    /// trivially 1.
    #[must_use]
    pub fn bisection(alpha: u64) -> Self {
        assert!(alpha >= 1, "bisection migration cost must be >= 1");
        Self {
            request_weights: None,
            migration_weight: alpha,
            name: "bisection",
        }
    }

    /// Generalized learning model: a charged request on edge `e` costs
    /// `weights[e]` (the pair's learning cost); migrations cost 1.
    ///
    /// # Panics
    /// Panics if any weight is 0 — zero-cost pairs degenerate (the
    /// adversary would request them forever for free).
    #[must_use]
    pub fn learning(weights: Vec<u64>) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 1),
            "learning pair costs must be >= 1"
        );
        Self {
            request_weights: Some(weights),
            migration_weight: 1,
            name: "learning",
        }
    }

    /// The cost of a charged (cut-at-request-time) request on `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range of the learning weight table.
    #[must_use]
    pub fn request_weight(&self, e: Edge) -> u64 {
        self.request_weights.as_ref().map_or(1, |w| w[e.0 as usize])
    }

    /// The cost per moved process.
    #[must_use]
    pub fn migration_weight(&self) -> u64 {
        self.migration_weight
    }

    /// Family name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this is the standard model (all weights 1) — the case
    /// where the reweighted total provably equals the ledger total.
    #[must_use]
    pub fn is_standard(&self) -> bool {
        self.migration_weight == 1
            && self
                .request_weights
                .as_ref()
                .is_none_or(|w| w.iter().all(|&x| x == 1))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::standard()
    }
}

/// Accumulates a [`CostModel`]'s reweighted cost from the driver's
/// per-step events.
///
/// Request weights are per-edge, and [`crate::BatchEvent`] carries no
/// per-request identities — so this observer requires the per-step
/// path ([`Observer::wants_steps`] answers `true`, the default), and
/// executors route runs through the per-step driver whenever it is
/// attached.
#[derive(Debug, Clone, Default)]
pub struct FamilyCostObserver {
    model: CostModel,
    communication: u64,
    migration: u64,
}

impl FamilyCostObserver {
    /// Creates an observer charging under `model`.
    #[must_use]
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            communication: 0,
            migration: 0,
        }
    }

    /// Reweighted communication cost so far.
    #[must_use]
    pub fn communication(&self) -> u64 {
        self.communication
    }

    /// Reweighted migration cost so far.
    #[must_use]
    pub fn migration(&self) -> u64 {
        self.migration
    }

    /// Reweighted total cost so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.communication + self.migration
    }

    /// The model this observer charges under.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

impl Observer for FamilyCostObserver {
    fn on_step(&mut self, event: &StepEvent) {
        if event.charged {
            self.communication += self.model.request_weight(event.request);
        }
        self.migration += event.migrations * self.model.migration_weight;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CutChaser;
    use crate::{run_observed, AuditLevel, Placement, Process, RingInstance, Server};

    /// Minimal greedy collocator: pull the clockwise endpoint over
    /// whenever there is room (enough to exercise both cost kinds).
    struct Pull {
        placement: Placement,
    }

    impl crate::OnlineAlgorithm for Pull {
        fn placement(&self) -> &Placement {
            &self.placement
        }
        fn placement_mut(&mut self) -> &mut Placement {
            &mut self.placement
        }
        fn serve(&mut self, e: Edge) -> u64 {
            let (u, v) = self.placement.instance().endpoints(e);
            let (su, k) = (
                self.placement.server(u),
                self.placement.instance().capacity(),
            );
            if self.placement.server(v) != su && self.placement.load(su) < k {
                u64::from(self.placement.migrate(v, su))
            } else {
                0
            }
        }
        fn name(&self) -> &'static str {
            "pull"
        }
    }

    fn run_with(model: CostModel, steps: u64) -> (FamilyCostObserver, u64) {
        let inst = RingInstance::new(16, 4, 5);
        let mut alg = Pull {
            placement: Placement::contiguous(&inst),
        };
        let mut workload = CutChaser::new();
        let mut obs = FamilyCostObserver::new(model);
        let report = run_observed(
            &mut alg,
            &mut workload,
            steps,
            AuditLevel::Full { load_limit: 5 },
            &mut obs,
        );
        let ledger_total = report.ledger.total();
        (obs, ledger_total)
    }

    #[test]
    fn standard_model_reproduces_the_ledger_exactly() {
        let (obs, ledger) = run_with(CostModel::standard(), 200);
        assert_eq!(obs.total(), ledger);
        assert!(obs.communication() > 0 && obs.migration() > 0);
    }

    #[test]
    fn learning_with_unit_weights_reduces_to_the_standard_model() {
        // The satellite property: all pair-costs 1 ⇒ the generalized
        // learning total IS the standard total, event for event.
        let unit = CostModel::learning(vec![1; 16]);
        assert!(unit.is_standard());
        let (obs, ledger) = run_with(unit, 300);
        assert_eq!(obs.total(), ledger);
    }

    #[test]
    fn bisection_cost_never_below_the_partition_cost_on_the_same_trace() {
        // The satellite property: α ≥ 1 reweights only migrations
        // upward, so on the same event stream the bisection total
        // dominates the standard (partition) total; α = 1 is equality.
        for alpha in [1u64, 2, 5, 10] {
            let (obs, ledger) = run_with(CostModel::bisection(alpha), 250);
            assert!(
                obs.total() >= ledger,
                "alpha={alpha}: bisection {} < partition {ledger}",
                obs.total()
            );
            if alpha == 1 {
                assert_eq!(obs.total(), ledger);
            }
        }
    }

    #[test]
    fn learning_weights_charge_per_edge() {
        // Weight edge 0 at 7, everything else 1; request edge 0 across
        // a cut and compare against the unweighted charge.
        let inst = RingInstance::new(8, 2, 4);
        let mut weights = vec![1u64; 8];
        weights[0] = 7;
        let model = CostModel::learning(weights);
        assert!(!model.is_standard());
        let mut obs = FamilyCostObserver::new(model);
        // Hand-build one charged step on edge 0 and one on edge 1.
        obs.on_step(&StepEvent {
            step: 0,
            request: Edge(0),
            charged: true,
            migrations: 0,
            max_load: 4,
            violated: false,
        });
        obs.on_step(&StepEvent {
            step: 1,
            request: Edge(1),
            charged: true,
            migrations: 2,
            max_load: 4,
            violated: false,
        });
        let _ = inst;
        assert_eq!(obs.communication(), 8);
        assert_eq!(obs.migration(), 2);
        assert_eq!(obs.total(), 10);
    }

    #[test]
    #[should_panic(expected = "migration cost")]
    fn bisection_rejects_free_migrations() {
        let _ = CostModel::bisection(0);
    }

    #[test]
    #[should_panic(expected = "pair costs")]
    fn learning_rejects_zero_weights() {
        let _ = CostModel::learning(vec![1, 0, 1]);
    }

    #[test]
    fn observer_wants_the_per_step_path() {
        let obs = FamilyCostObserver::new(CostModel::standard());
        assert!(obs.wants_steps(), "per-edge weights need step events");
        let _ = (Process(0), Server(0)); // silence unused imports
    }
}
