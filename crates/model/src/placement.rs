//! Process→server assignments with incrementally maintained loads.
//!
//! Data-oriented layout (DESIGN.md §14): a [`Placement`] is a handful of
//! parallel dense vectors — the assignment (`Vec<u32>`, one entry per
//! process), the load histogram ([`LoadHistogram`]: per-server loads
//! plus a per-level occupancy count backing the O(1) incremental max),
//! and the migration journal ([`MigrationJournal`]: three parallel
//! `Vec<u32>` columns instead of an array-of-structs). The audit's
//! journal drain and the per-move load updates touch only these small
//! contiguous arrays, so the placement side of a serve step stays
//! cache-resident.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::{Edge, Process, RingInstance, Segment, Server, WorkCounters};

/// One recorded migration: process `process` moved `from → to`.
///
/// Records are appended by [`Placement::migrate`] (and therefore by
/// [`Placement::migrate_segment`]) while journaling is enabled, in the
/// exact order the moves happened — the delta stream the driver's
/// O(changed) audit consumes instead of re-deriving a placement diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The process that moved.
    pub process: Process,
    /// The server it left.
    pub from: Server,
    /// The server it landed on (always ≠ `from`; same-server moves are
    /// not migrations and are never journaled).
    pub to: Server,
}

/// The buffered migration deltas, stored as a struct of arrays: three
/// parallel `Vec<u32>` columns (process, from, to) appended in move
/// order. Iteration yields [`MigrationRecord`]s by value, assembled on
/// the fly — consumers keep their AoS view while the storage stays
/// three dense, independently prefetchable columns.
#[derive(Debug, Clone, Default)]
pub struct MigrationJournal {
    process: Vec<u32>,
    from: Vec<u32>,
    to: Vec<u32>,
}

impl MigrationJournal {
    /// Number of buffered records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.process.len()
    }

    /// Whether the journal is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.process.is_empty()
    }

    /// The `i`-th record in append order.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> MigrationRecord {
        MigrationRecord {
            process: Process(self.process[i]),
            from: Server(self.from[i]),
            to: Server(self.to[i]),
        }
    }

    /// Iterates the records in append order (by value).
    pub fn iter(&self) -> JournalIter<'_> {
        JournalIter {
            journal: self,
            i: 0,
        }
    }

    /// The records as an owned vector (test/debug convenience).
    #[must_use]
    pub fn to_vec(&self) -> Vec<MigrationRecord> {
        self.iter().collect()
    }

    fn push(&mut self, rec: MigrationRecord) {
        self.process.push(rec.process.0);
        self.from.push(rec.from.0);
        self.to.push(rec.to.0);
    }

    fn clear(&mut self) {
        self.process.clear();
        self.from.clear();
        self.to.clear();
    }
}

/// Iterator over a [`MigrationJournal`], yielding records by value.
#[derive(Debug)]
pub struct JournalIter<'a> {
    journal: &'a MigrationJournal,
    i: usize,
}

impl Iterator for JournalIter<'_> {
    type Item = MigrationRecord;

    fn next(&mut self) -> Option<MigrationRecord> {
        if self.i >= self.journal.len() {
            return None;
        }
        let rec = self.journal.get(self.i);
        self.i += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.journal.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for JournalIter<'_> {}

impl<'a> IntoIterator for &'a MigrationJournal {
    type Item = MigrationRecord;
    type IntoIter = JournalIter<'a>;

    fn into_iter(self) -> JournalIter<'a> {
        self.iter()
    }
}

/// Server loads plus the occupancy histogram that makes the maximum
/// load an O(1) query under ±1 load changes: `count[l]` is the number
/// of servers currently at load `l` (length `n + 1`; a load can never
/// exceed `n`), and `max` moves by at most 1 per update, dropping
/// exactly when the last server leaves the top bucket.
#[derive(Debug, Clone)]
struct LoadHistogram {
    loads: Vec<u32>,
    count: Vec<u32>,
    max: u32,
    /// Work counter: times the incremental `max` changed.
    max_updates: u64,
}

impl LoadHistogram {
    fn new(loads: Vec<u32>, n: u32) -> Self {
        let mut count = vec![0u32; n as usize + 1];
        for &l in &loads {
            count[l as usize] += 1;
        }
        let max = loads.iter().copied().max().unwrap_or(0);
        Self {
            loads,
            count,
            max,
            max_updates: 0,
        }
    }

    fn dec(&mut self, s: u32) {
        let l = self.loads[s as usize];
        self.loads[s as usize] = l - 1;
        self.count[l as usize] -= 1;
        self.count[l as usize - 1] += 1;
        // The max drops (by exactly 1) iff the last max-load server just
        // left the top bucket.
        if l == self.max && self.count[l as usize] == 0 {
            self.max -= 1;
            self.max_updates += 1;
        }
    }

    fn inc(&mut self, s: u32) {
        let l = self.loads[s as usize];
        self.loads[s as usize] = l + 1;
        self.count[l as usize] -= 1;
        self.count[l as usize + 1] += 1;
        if l + 1 > self.max {
            self.max = l + 1;
            self.max_updates += 1;
        }
    }
}

/// An assignment of every process to a server, with server loads *and*
/// the maximum load kept incrementally (O(1) per move, O(1) max-load
/// query), plus an optional migration journal.
///
/// A placement does **not** enforce capacity — the simulation driver
/// audits loads against the augmented capacity `α·k`, because online and
/// offline algorithms are held to different limits (resource
/// augmentation, Section 2).
///
/// ## The migration journal
///
/// When journaling is enabled ([`Placement::set_journaling`]), every
/// actual migration appends a [`MigrationRecord`]. The driver's full
/// audit arms journaling, lets the algorithm serve, then verifies the
/// drained journal against the reported migration count — O(changed)
/// instead of the former O(n) clone + Hamming diff. Journaling is off
/// by default so placements used outside an auditing driver never
/// accumulate records.
#[derive(Debug, Clone)]
pub struct Placement {
    servers_of: Vec<u32>,
    hist: LoadHistogram,
    journal: MigrationJournal,
    record_journal: bool,
    instance: RingInstance,
    /// Work counter: actual migrations performed (always on; plain u64
    /// add per move). Transient — never serialized, never compared.
    migrations: u64,
}

/// Placements compare by what they assert — the assignment (and its
/// instance). Loads, the max cache and the journal are derived or
/// transient state.
impl PartialEq for Placement {
    fn eq(&self, other: &Self) -> bool {
        self.instance == other.instance && self.servers_of == other.servers_of
    }
}

impl Eq for Placement {}

impl Placement {
    /// The canonical initial placement: process `pᵢ` on server
    /// `⌊i/k⌋` — contiguous segments of length `k`, the "initial
    /// distribution" both the paper's algorithms assume.
    ///
    /// # Panics
    /// Panics if `⌊i/k⌋` would exceed `ℓ-1` for some process (cannot
    /// happen when `n ≤ ℓ·k`, which [`RingInstance`] guarantees).
    #[must_use]
    pub fn contiguous(instance: &RingInstance) -> Self {
        let k = instance.capacity();
        let servers_of: Vec<u32> = (0..instance.n()).map(|i| i / k).collect();
        Self::from_assignment(instance, servers_of)
    }

    /// Builds a placement from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if the vector length differs from `n` or a server index is
    /// out of range.
    #[must_use]
    pub fn from_assignment(instance: &RingInstance, servers_of: Vec<u32>) -> Self {
        assert_eq!(
            servers_of.len(),
            instance.n() as usize,
            "assignment length must equal n"
        );
        let mut loads = vec![0u32; instance.servers() as usize];
        for &s in &servers_of {
            assert!(s < instance.servers(), "server index {s} out of range");
            loads[s as usize] += 1;
        }
        Self {
            servers_of,
            hist: LoadHistogram::new(loads, instance.n()),
            journal: MigrationJournal::default(),
            record_journal: false,
            instance: *instance,
            migrations: 0,
        }
    }

    /// The instance this placement belongs to.
    #[must_use]
    pub fn instance(&self) -> &RingInstance {
        &self.instance
    }

    /// Server currently hosting process `p`.
    #[must_use]
    pub fn server(&self, p: Process) -> Server {
        Server(self.servers_of[p.0 as usize])
    }

    /// Moves process `p` to server `s`. Returns `true` if this was an
    /// actual migration (different server), which costs 1 in the model.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn migrate(&mut self, p: Process, s: Server) -> bool {
        assert!(s.0 < self.instance.servers(), "server out of range");
        let old = self.servers_of[p.0 as usize];
        if old == s.0 {
            return false;
        }
        self.hist.dec(old);
        self.hist.inc(s.0);
        self.servers_of[p.0 as usize] = s.0;
        self.migrations += 1;
        if self.record_journal {
            self.journal.push(MigrationRecord {
                process: p,
                from: Server(old),
                to: s,
            });
        }
        true
    }

    /// Moves a whole segment to server `s`, returning the number of
    /// actual migrations.
    pub fn migrate_segment(&mut self, seg: &Segment, s: Server) -> u64 {
        let mut moved = 0;
        for p in seg.iter() {
            if self.migrate(p, s) {
                moved += 1;
            }
        }
        moved
    }

    /// Current load of server `s`.
    #[must_use]
    pub fn load(&self, s: Server) -> u32 {
        self.hist.loads[s.0 as usize]
    }

    /// Maximum load over all servers — O(1), maintained incrementally
    /// across migrations (property-tested against a full rescan).
    #[must_use]
    pub fn max_load(&self) -> u32 {
        self.hist.max
    }

    /// All server loads.
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.hist.loads
    }

    /// Enables or disables migration journaling. Disabling clears any
    /// buffered records; enabling starts from an empty journal.
    pub fn set_journaling(&mut self, enabled: bool) {
        if self.record_journal != enabled {
            self.journal.clear();
        }
        self.record_journal = enabled;
    }

    /// Whether migrations are currently being journaled.
    #[must_use]
    pub fn journaling(&self) -> bool {
        self.record_journal
    }

    /// The migrations journaled since the last drain/clear, in order.
    #[must_use]
    pub fn journal(&self) -> &MigrationJournal {
        &self.journal
    }

    /// Clears the journal, keeping its columns' capacity (the auditing
    /// driver calls this once per step, so steady-state auditing
    /// allocates nothing).
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }

    /// Hands the buffered migration deltas to the caller as an owned
    /// vector, leaving the journal empty (column capacity retained).
    pub fn drain_journal(&mut self) -> Vec<MigrationRecord> {
        let records = self.journal.to_vec();
        self.journal.clear();
        records
    }

    /// Whether the endpoints of ring edge `e` sit on different servers
    /// (such an edge is a *cut edge*; a request to it costs 1).
    #[must_use]
    pub fn is_cut(&self, e: Edge) -> bool {
        let (a, b) = self.instance.endpoints(e);
        self.servers_of[a.0 as usize] != self.servers_of[b.0 as usize]
    }

    /// Iterator over all current cut edges in ring order.
    pub fn cut_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.instance.edges().filter(|&e| self.is_cut(e))
    }

    /// Number of processes placed differently in `other` — the migration
    /// cost of jumping from `self` to `other` in one step.
    ///
    /// # Panics
    /// Panics if the placements belong to different-sized instances.
    #[must_use]
    pub fn migration_distance(&self, other: &Self) -> u64 {
        assert_eq!(
            self.servers_of.len(),
            other.servers_of.len(),
            "placements over different instances"
        );
        self.servers_of
            .iter()
            .zip(&other.servers_of)
            .filter(|(a, b)| a != b)
            .count() as u64
    }

    /// Raw assignment vector (`servers_of[p] = server index`).
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.servers_of
    }

    /// Work counter: actual migrations performed since construction
    /// (same-server no-op "moves" excluded).
    #[must_use]
    pub fn migrations_performed(&self) -> u64 {
        self.migrations
    }

    /// Work counter: how often the incrementally maintained max load
    /// changed since construction.
    #[must_use]
    pub fn max_load_updates(&self) -> u64 {
        self.hist.max_updates
    }

    /// Adds this placement's work counters into `out` (the
    /// [`crate::OnlineAlgorithm::work_counters`] plumbing).
    pub fn add_work_counters(&self, out: &mut WorkCounters) {
        out.migrations += self.migrations;
        out.max_load_updates += self.hist.max_updates;
    }
}

/// Placements serialize as `{instance, assignment}`; loads are
/// recomputed on deserialization, and the assignment is re-validated
/// against the instance (wrong length or out-of-range server indices
/// are rejected instead of panicking). The journal is transient and
/// never serialized.
impl Serialize for Placement {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("instance".into(), self.instance.to_value()),
            ("assignment".into(), self.servers_of.to_value()),
        ])
    }
}

impl Deserialize for Placement {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let instance = RingInstance::from_value(v.get_field("instance")?)?;
        let servers_of = <Vec<u32> as Deserialize>::from_value(v.get_field("assignment")?)?;
        if servers_of.len() != instance.n() as usize {
            return Err(DeError(format!(
                "assignment length {} != n={}",
                servers_of.len(),
                instance.n()
            )));
        }
        if let Some(&s) = servers_of.iter().find(|&&s| s >= instance.servers()) {
            return Err(DeError(format!(
                "server index {s} out of range 0..{}",
                instance.servers()
            )));
        }
        Ok(Self::from_assignment(&instance, servers_of))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn inst() -> RingInstance {
        RingInstance::new(12, 3, 4)
    }

    #[test]
    fn contiguous_initial_loads_are_k() {
        let p = Placement::contiguous(&inst());
        for s in 0..3 {
            assert_eq!(p.load(Server(s)), 4);
        }
        assert_eq!(p.max_load(), 4);
    }

    #[test]
    fn contiguous_cut_edges_every_k() {
        let p = Placement::contiguous(&inst());
        let cuts: Vec<_> = p.cut_edges().collect();
        assert_eq!(cuts, vec![Edge(3), Edge(7), Edge(11)]);
    }

    #[test]
    fn migrate_updates_loads_incrementally() {
        let mut p = Placement::contiguous(&inst());
        assert!(p.migrate(Process(0), Server(2)));
        assert_eq!(p.load(Server(0)), 3);
        assert_eq!(p.load(Server(2)), 5);
        assert_eq!(p.max_load(), 5);
        // Same-server "move" is free.
        assert!(!p.migrate(Process(0), Server(2)));
        assert_eq!(p.load(Server(2)), 5);
    }

    #[test]
    fn incremental_max_matches_rescan_under_random_churn() {
        // Satellite regression: the O(1) max must equal a brute-force
        // recompute after every single migration, including the
        // decreasing direction the incremental path has to get right.
        let i = RingInstance::new(24, 6, 4);
        let mut p = Placement::contiguous(&i);
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..4000 {
            let proc = Process(rng.random_range(0..i.n()));
            let dst = Server(rng.random_range(0..i.servers()));
            p.migrate(proc, dst);
            let brute = p.loads().iter().copied().max().unwrap();
            assert_eq!(
                p.max_load(),
                brute,
                "step {step}: incremental max diverged from rescan"
            );
        }
    }

    #[test]
    fn journal_records_actual_moves_in_order() {
        let mut p = Placement::contiguous(&inst());
        assert!(!p.journaling());
        p.migrate(Process(0), Server(1)); // not journaled: disabled
        p.set_journaling(true);
        assert!(p.journal().is_empty());
        p.migrate(Process(1), Server(2));
        p.migrate(Process(1), Server(2)); // same-server no-op: not journaled
        p.migrate(Process(1), Server(0));
        let journal = p.journal().to_vec();
        assert_eq!(
            journal,
            vec![
                MigrationRecord {
                    process: Process(1),
                    from: Server(0),
                    to: Server(2),
                },
                MigrationRecord {
                    process: Process(1),
                    from: Server(2),
                    to: Server(0),
                },
            ]
        );
        // The SoA columns reassemble the same records however they are
        // read: indexed, iterated, or drained.
        assert_eq!(p.journal().get(0), journal[0]);
        assert_eq!(p.journal().iter().len(), 2);
        assert_eq!(p.journal().iter().collect::<Vec<_>>(), journal);
        let drained = p.drain_journal();
        assert_eq!(drained, journal);
        assert!(p.journal().is_empty());
        assert!(p.journaling(), "draining keeps journaling armed");
        p.set_journaling(false);
        p.migrate(Process(2), Server(2));
        assert!(p.journal().is_empty());
    }

    #[test]
    fn journal_counts_match_segment_migrations() {
        let i = inst();
        let mut p = Placement::contiguous(&i);
        p.set_journaling(true);
        let seg = Segment::new(&i, 2, 3);
        let moved = p.migrate_segment(&seg, Server(1));
        assert_eq!(p.journal().len() as u64, moved);
    }

    #[test]
    fn equality_ignores_journal_state() {
        let mut a = Placement::contiguous(&inst());
        let b = Placement::contiguous(&inst());
        a.set_journaling(true);
        a.migrate(Process(0), Server(1));
        a.migrate(Process(0), Server(0));
        assert!(!a.journal().is_empty());
        assert_eq!(a, b, "equality is about the assignment, not the journal");
    }

    #[test]
    fn migrate_segment_counts_only_real_moves() {
        let i = inst();
        let mut p = Placement::contiguous(&i);
        // Segment {2,3,4}: processes 2,3 on server 0; 4 on server 1.
        let seg = Segment::new(&i, 2, 3);
        let moved = p.migrate_segment(&seg, Server(1));
        assert_eq!(moved, 2);
        assert_eq!(p.server(Process(2)), Server(1));
        assert_eq!(p.server(Process(4)), Server(1));
    }

    #[test]
    fn is_cut_detects_boundaries() {
        let p = Placement::contiguous(&inst());
        assert!(!p.is_cut(Edge(0)));
        assert!(p.is_cut(Edge(3)));
        assert!(p.is_cut(Edge(11))); // wraps: p11 (server 2) — p0 (server 0)
    }

    #[test]
    fn migration_distance_is_hamming() {
        let i = inst();
        let a = Placement::contiguous(&i);
        let mut b = a.clone();
        b.migrate(Process(1), Server(1));
        b.migrate(Process(2), Server(2));
        assert_eq!(a.migration_distance(&b), 2);
        assert_eq!(b.migration_distance(&a), 2);
        assert_eq!(a.migration_distance(&a), 0);
    }

    #[test]
    fn from_assignment_validates() {
        let i = inst();
        let p = Placement::from_assignment(&i, vec![0; 12]);
        assert_eq!(p.load(Server(0)), 12);
        assert_eq!(p.max_load(), 12);
        assert_eq!(p.cut_edges().count(), 0);
    }

    #[test]
    #[should_panic(expected = "server index")]
    fn from_assignment_rejects_bad_server() {
        let _ = Placement::from_assignment(&inst(), vec![7; 12]);
    }
}
