//! Request generators: oblivious workloads and adaptive adversaries.
//!
//! Oblivious generators ignore the placement argument; adaptive
//! adversaries (e.g. [`CutChaser`]) inspect the algorithm's current
//! placement, which is exactly the power the lower-bound proofs
//! (Lemma 4.1, Avin et al.'s Ω(k)) grant the adversary against
//! deterministic algorithms.
//!
//! All randomized generators are seeded ([`rand::rngs::StdRng`]) and
//! therefore reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::seed::{rng_from_value, rng_to_value};
use crate::{Edge, Placement, RingInstance};

/// A source of communication requests on the ring.
pub trait Workload {
    /// Produces the next requested edge. Adaptive adversaries may
    /// inspect `placement`; oblivious workloads ignore it.
    fn next_request(&mut self, placement: &Placement) -> Edge;

    /// Whether this workload inspects the live placement (an adaptive
    /// adversary). Batched executors must generate adaptive requests
    /// one at a time, interleaved with serving — pre-generating a batch
    /// would show the adversary a stale placement. Oblivious workloads
    /// (the default) may be pre-generated freely.
    fn is_adaptive(&self) -> bool {
        false
    }

    /// Appends `n` requests to `out`, generated against `placement`.
    ///
    /// For oblivious workloads this is exactly `n` calls to
    /// [`Workload::next_request`] — same RNG stream, same requests —
    /// with one virtual dispatch per batch instead of one per edge;
    /// implementations specialize it with tight loops that hoist the
    /// per-request instance lookups. For adaptive workloads the default
    /// generates against the *fixed* `placement` snapshot, which is
    /// only correct when the placement cannot change mid-batch — the
    /// batched driver never calls `fill_batch` on an adaptive workload
    /// (see [`Workload::is_adaptive`]).
    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        out.reserve(n as usize);
        for _ in 0..n {
            out.push(self.next_request(placement));
        }
    }

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Exports a serializable snapshot of all mutable state, or `None`
    /// if the workload does not support checkpointing. Same contract as
    /// [`crate::OnlineAlgorithm::export_state`]: restoring into a
    /// freshly constructed (same parameters, same seed) instance must
    /// continue the request stream bit-identically.
    fn export_state(&self) -> Option<Value> {
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an
    /// identically-configured instance.
    ///
    /// # Errors
    /// Returns a [`DeError`] if the workload does not support
    /// checkpointing or the snapshot does not fit.
    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Err(DeError(format!(
            "workload `{}` does not support snapshot/restore",
            self.name()
        )))
    }
}

/// Shorthand for the `{field: value}` objects the workload snapshots
/// are built from (shared with [`crate::adversary`]).
pub(crate) fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Deterministic ring-allreduce traffic: request edge `t mod n` at step
/// `t` — repeated full passes around the ring, the communication shape
/// of ring-allreduce collectives in distributed ML (paper §1, [13–15]).
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    t: u64,
}

impl Sequential {
    /// Starts a fresh pass at edge 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Workload for Sequential {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let e = placement.instance().edge(self.t);
        self.t += 1;
        e
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let inst = *placement.instance();
        out.reserve(n as usize);
        for _ in 0..n {
            out.push(inst.edge(self.t));
            self.t += 1;
        }
    }

    fn name(&self) -> &'static str {
        "allreduce"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![("t", self.t.to_value())]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.t = u64::from_value(state.get_field("t")?)?;
        Ok(())
    }
}

/// Uniformly random edges.
#[derive(Debug)]
pub struct UniformRandom {
    rng: StdRng,
}

impl UniformRandom {
    /// Creates a seeded uniform generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for UniformRandom {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let n = placement.instance().n();
        Edge(self.rng.random_range(0..n))
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let edges = placement.instance().n();
        out.reserve(n as usize);
        for _ in 0..n {
            out.push(Edge(self.rng.random_range(0..edges)));
        }
    }

    fn name(&self) -> &'static str {
        "uniform"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![("rng", rng_to_value(&self.rng))]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        Ok(())
    }
}

/// Zipf-distributed edge popularity: rank-`r` edge has weight
/// `1/(r+1)^s`, with ranks assigned by a seeded random permutation so the
/// hot edges are scattered around the ring.
#[derive(Debug)]
pub struct Zipf {
    rng: StdRng,
    cdf: Vec<f64>,
    edge_of_rank: Vec<u32>,
}

impl Zipf {
    /// Creates a Zipf generator with exponent `s > 0` over the edges of
    /// `instance`.
    ///
    /// # Panics
    /// Panics if `s` is not finite and positive.
    #[must_use]
    pub fn new(instance: &RingInstance, s: f64, seed: u64) -> Self {
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = instance.n() as usize;
        let mut edge_of_rank: Vec<u32> = (0..instance.n()).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            edge_of_rank.swap(i, j);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self {
            rng,
            cdf,
            edge_of_rank,
        }
    }
}

impl Workload for Zipf {
    fn next_request(&mut self, _placement: &Placement) -> Edge {
        let u: f64 = self.rng.random();
        let rank = self.cdf.partition_point(|&c| c < u);
        let rank = rank.min(self.edge_of_rank.len() - 1);
        Edge(self.edge_of_rank[rank])
    }

    fn fill_batch(&mut self, _placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let last = self.edge_of_rank.len() - 1;
        out.reserve(n as usize);
        for _ in 0..n {
            let u: f64 = self.rng.random();
            let rank = self.cdf.partition_point(|&c| c < u).min(last);
            out.push(Edge(self.edge_of_rank[rank]));
        }
    }

    fn name(&self) -> &'static str {
        "zipf"
    }

    // The cdf and rank permutation are construction-derived (same
    // parameters + seed ⇒ identical tables), so only the RNG position
    // is live state.
    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![("rng", rng_to_value(&self.rng))]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        Ok(())
    }
}

/// A hot window of `width` consecutive edges; requests are uniform
/// within the window, and the window slides forward by one edge every
/// `period` requests. Models drifting locality.
#[derive(Debug)]
pub struct SlidingWindow {
    rng: StdRng,
    width: u32,
    period: u64,
    t: u64,
}

impl SlidingWindow {
    /// Creates a sliding-window generator.
    ///
    /// # Panics
    /// Panics if `width == 0` or `period == 0`.
    #[must_use]
    pub fn new(width: u32, period: u64, seed: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(period > 0, "slide period must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            width,
            period,
            t: 0,
        }
    }
}

impl Workload for SlidingWindow {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let inst = placement.instance();
        let base = self.t / self.period;
        let offset = u64::from(self.rng.random_range(0..self.width.min(inst.n())));
        self.t += 1;
        inst.edge(base + offset)
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let inst = *placement.instance();
        let width = self.width.min(inst.n());
        out.reserve(n as usize);
        for _ in 0..n {
            let base = self.t / self.period;
            let offset = u64::from(self.rng.random_range(0..width));
            self.t += 1;
            out.push(inst.edge(base + offset));
        }
    }

    fn name(&self) -> &'static str {
        "sliding-window"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![
            ("rng", rng_to_value(&self.rng)),
            ("t", self.t.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        self.t = u64::from_value(state.get_field("t")?)?;
        Ok(())
    }
}

/// A single hot edge requested with probability `p_hot` (else a uniform
/// edge); the hotspot teleports by `jump` edges every `dwell` requests.
/// Models tenant churn / failover in a datacenter.
#[derive(Debug)]
pub struct RotatingHotspot {
    rng: StdRng,
    p_hot: f64,
    jump: u32,
    dwell: u64,
    t: u64,
}

impl RotatingHotspot {
    /// Creates a rotating-hotspot generator.
    ///
    /// # Panics
    /// Panics if `p_hot ∉ [0,1]` or `dwell == 0`.
    #[must_use]
    pub fn new(p_hot: f64, jump: u32, dwell: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_hot), "p_hot must be in [0,1]");
        assert!(dwell > 0, "dwell must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            p_hot,
            jump,
            dwell,
            t: 0,
        }
    }
}

impl Workload for RotatingHotspot {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let inst = placement.instance();
        let epoch = self.t / self.dwell;
        self.t += 1;
        if self.rng.random::<f64>() < self.p_hot {
            inst.edge(epoch * u64::from(self.jump))
        } else {
            Edge(self.rng.random_range(0..inst.n()))
        }
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let inst = *placement.instance();
        out.reserve(n as usize);
        for _ in 0..n {
            let epoch = self.t / self.dwell;
            self.t += 1;
            out.push(if self.rng.random::<f64>() < self.p_hot {
                inst.edge(epoch * u64::from(self.jump))
            } else {
                Edge(self.rng.random_range(0..inst.n()))
            });
        }
    }

    fn name(&self) -> &'static str {
        "rotating-hotspot"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![
            ("rng", rng_to_value(&self.rng)),
            ("t", self.t.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        self.t = u64::from_value(state.get_field("t")?)?;
        Ok(())
    }
}

/// Geometric bursts: keep requesting the same edge with probability
/// `p_continue`, otherwise jump to a fresh uniform edge.
#[derive(Debug)]
pub struct Bursty {
    rng: StdRng,
    current: Option<Edge>,
    p_continue: f64,
}

impl Bursty {
    /// Creates a bursty generator (expected burst length
    /// `1/(1-p_continue)`).
    ///
    /// # Panics
    /// Panics if `p_continue ∉ [0,1)`.
    #[must_use]
    pub fn new(p_continue: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p_continue),
            "p_continue must be in [0,1)"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            current: None,
            p_continue,
        }
    }
}

impl Workload for Bursty {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let n = placement.instance().n();
        let fresh = match self.current {
            Some(e) if self.rng.random::<f64>() < self.p_continue => e,
            _ => Edge(self.rng.random_range(0..n)),
        };
        self.current = Some(fresh);
        fresh
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let edges = placement.instance().n();
        out.reserve(n as usize);
        for _ in 0..n {
            let fresh = match self.current {
                Some(e) if self.rng.random::<f64>() < self.p_continue => e,
                _ => Edge(self.rng.random_range(0..edges)),
            };
            self.current = Some(fresh);
            out.push(fresh);
        }
    }

    fn name(&self) -> &'static str {
        "bursty"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![
            ("rng", rng_to_value(&self.rng)),
            ("current", self.current.map(|e| e.0).to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        self.current =
            <Option<u32> as Deserialize>::from_value(state.get_field("current")?)?.map(Edge);
        Ok(())
    }
}

/// The requested edge performs a lazy ±1 random walk on the ring.
/// Produces long runs of spatially correlated requests.
#[derive(Debug)]
pub struct RandomWalk {
    rng: StdRng,
    position: u64,
}

impl RandomWalk {
    /// Creates a random-walk generator starting at edge `start`.
    #[must_use]
    pub fn new(start: u32, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            position: u64::from(start),
        }
    }
}

impl Workload for RandomWalk {
    fn next_request(&mut self, placement: &Placement) -> Edge {
        let n = u64::from(placement.instance().n());
        match self.rng.random_range(0..3u8) {
            0 => self.position = (self.position + 1) % n,
            1 => self.position = (self.position + n - 1) % n,
            _ => {}
        }
        placement.instance().edge(self.position)
    }

    fn fill_batch(&mut self, placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let inst = *placement.instance();
        let edges = u64::from(inst.n());
        out.reserve(n as usize);
        for _ in 0..n {
            match self.rng.random_range(0..3u8) {
                0 => self.position = (self.position + 1) % edges,
                1 => self.position = (self.position + edges - 1) % edges,
                _ => {}
            }
            out.push(inst.edge(self.position));
        }
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![
            ("rng", rng_to_value(&self.rng)),
            ("position", self.position.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.rng = rng_from_value(state.get_field("rng")?)?;
        self.position = u64::from_value(state.get_field("position")?)?;
        Ok(())
    }
}

/// **Adaptive adversary**: always requests a current cut edge of the
/// online algorithm (scanning clockwise from the previous request so the
/// pressure rotates). This is the adversary from the deterministic
/// lower bounds — any deterministic algorithm pays 1 on every request or
/// migrates.
///
/// If the placement has no cut edge (only possible when one server hosts
/// everything), edge 0 is requested.
#[derive(Debug, Clone, Default)]
pub struct CutChaser {
    cursor: u32,
}

impl CutChaser {
    /// Creates a cut-chasing adversary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Workload for CutChaser {
    // Adaptive: inspects the live placement, so batched executors must
    // generate its requests one serve at a time.
    fn is_adaptive(&self) -> bool {
        true
    }

    fn next_request(&mut self, placement: &Placement) -> Edge {
        let n = placement.instance().n();
        for off in 1..=n {
            let e = Edge((self.cursor + off) % n);
            if placement.is_cut(e) {
                self.cursor = e.0;
                return e;
            }
        }
        Edge(0)
    }

    fn name(&self) -> &'static str {
        "cut-chaser"
    }

    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![("cursor", self.cursor.to_value())]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.cursor = u32::from_value(state.get_field("cursor")?)?;
        Ok(())
    }
}

/// Replays a fixed request vector, cycling when exhausted.
#[derive(Debug)]
pub struct Replay {
    requests: Vec<Edge>,
    t: usize,
}

impl Replay {
    /// Creates a replay source.
    ///
    /// # Panics
    /// Panics if `requests` is empty.
    #[must_use]
    pub fn new(requests: Vec<Edge>) -> Self {
        assert!(!requests.is_empty(), "cannot replay an empty trace");
        Self { requests, t: 0 }
    }
}

impl Workload for Replay {
    fn next_request(&mut self, _placement: &Placement) -> Edge {
        let e = self.requests[self.t % self.requests.len()];
        self.t += 1;
        e
    }

    fn fill_batch(&mut self, _placement: &Placement, n: u64, out: &mut Vec<Edge>) {
        let len = self.requests.len();
        out.reserve(n as usize);
        for _ in 0..n {
            out.push(self.requests[self.t % len]);
            self.t += 1;
        }
    }

    fn name(&self) -> &'static str {
        "replay"
    }

    // The request vector is a construction parameter; only the cursor
    // is live state.
    fn export_state(&self) -> Option<Value> {
        Some(obj(vec![("t", self.t.to_value())]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        self.t = usize::from_value(state.get_field("t")?)?;
        Ok(())
    }
}

/// Records `steps` requests from a workload into a vector, driving it
/// with a fixed placement (useful for oblivious workloads whose output
/// does not depend on the placement).
pub fn record<W: Workload + ?Sized>(
    workload: &mut W,
    placement: &Placement,
    steps: u64,
) -> Vec<Edge> {
    (0..steps)
        .map(|_| workload.next_request(placement))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;

    fn placement() -> Placement {
        Placement::contiguous(&RingInstance::new(16, 4, 4))
    }

    #[test]
    fn sequential_walks_the_ring() {
        let p = placement();
        let mut w = Sequential::new();
        let got = record(&mut w, &p, 18);
        assert_eq!(got[0], Edge(0));
        assert_eq!(got[15], Edge(15));
        assert_eq!(got[16], Edge(0));
        assert_eq!(got[17], Edge(1));
    }

    #[test]
    fn uniform_is_seed_deterministic_and_in_range() {
        let p = placement();
        let a = record(&mut UniformRandom::new(42), &p, 100);
        let b = record(&mut UniformRandom::new(42), &p, 100);
        let c = record(&mut UniformRandom::new(43), &p, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|e| e.0 < 16));
    }

    #[test]
    fn zipf_concentrates_on_few_edges() {
        let p = placement();
        let mut w = Zipf::new(p.instance(), 1.2, 7);
        let reqs = record(&mut w, &p, 4000);
        let mut counts = [0u32; 16];
        for e in &reqs {
            counts[e.0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        // The rank-1 edge alone carries ≥ 1/H(16)^... far above uniform.
        assert!(max > 4000 / 16 * 2, "Zipf should be skewed, max={max}");
    }

    #[test]
    fn sliding_window_stays_in_window() {
        let p = placement();
        let mut w = SlidingWindow::new(4, 10, 3);
        for t in 0..200u64 {
            let e = w.next_request(&p);
            let base = t / 10;
            let off = (u64::from(e.0) + 16 - base % 16) % 16;
            assert!(off < 4, "step {t}: edge {} outside window", e.0);
        }
    }

    #[test]
    fn bursty_repeats_edges() {
        let p = placement();
        let mut w = Bursty::new(0.9, 5);
        let reqs = record(&mut w, &p, 1000);
        let repeats = reqs.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 700, "expected long bursts, got {repeats} repeats");
    }

    #[test]
    fn random_walk_moves_at_most_one() {
        let p = placement();
        let mut w = RandomWalk::new(5, 9);
        let reqs = record(&mut w, &p, 500);
        for pair in reqs.windows(2) {
            let d = p.instance().edge_distance(pair[0], pair[1]);
            assert!(d <= 1);
        }
    }

    #[test]
    fn cut_chaser_always_requests_cut_edges() {
        let p = placement();
        let mut w = CutChaser::new();
        for _ in 0..50 {
            let e = w.next_request(&p);
            assert!(p.is_cut(e));
        }
    }

    #[test]
    fn cut_chaser_rotates_over_all_cuts() {
        let p = placement();
        let mut w = CutChaser::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            seen.insert(w.next_request(&p));
        }
        assert_eq!(seen.len(), 4, "should cycle through all 4 cut edges");
    }

    #[test]
    fn rotating_hotspot_is_mostly_hot() {
        let p = placement();
        let mut w = RotatingHotspot::new(0.9, 3, 50, 11);
        let reqs = record(&mut w, &p, 50);
        let hot = reqs.iter().filter(|e| e.0 == 0).count();
        assert!(hot >= 35, "first epoch hotspot is edge 0, got {hot}");
    }

    #[test]
    fn fill_batch_matches_repeated_next_request() {
        // The batched generation path must consume the identical RNG
        // stream as per-request generation — split points must not
        // matter (the property the batched driver's bit-identity
        // relies on).
        let p = placement();
        let make: Vec<(&str, Box<dyn Fn() -> Box<dyn Workload>>)> = vec![
            ("allreduce", Box::new(|| Box::new(Sequential::new()))),
            ("uniform", Box::new(|| Box::new(UniformRandom::new(9)))),
            (
                "zipf",
                Box::new(|| Box::new(Zipf::new(placement().instance(), 1.2, 4))),
            ),
            (
                "sliding",
                Box::new(|| Box::new(SlidingWindow::new(4, 10, 3))),
            ),
            (
                "hotspot",
                Box::new(|| Box::new(RotatingHotspot::new(0.8, 3, 20, 6))),
            ),
            ("bursty", Box::new(|| Box::new(Bursty::new(0.9, 5)))),
            ("random-walk", Box::new(|| Box::new(RandomWalk::new(5, 9)))),
            (
                "replay",
                Box::new(|| Box::new(Replay::new(vec![Edge(1), Edge(2), Edge(3)]))),
            ),
        ];
        for (name, build) in make {
            let mut per_step = build();
            let want = record(per_step.as_mut(), &p, 300);
            let mut batched = build();
            assert!(!batched.is_adaptive(), "{name} must be oblivious");
            let mut got = Vec::new();
            for chunk in [1u64, 7, 100, 192] {
                batched.fill_batch(&p, chunk, &mut got);
            }
            assert_eq!(got, want, "{name}: batched stream diverged");
        }
    }

    #[test]
    fn cut_chaser_is_adaptive() {
        assert!(CutChaser::new().is_adaptive());
        assert!(!UniformRandom::new(0).is_adaptive());
    }

    #[test]
    fn replay_cycles() {
        let p = placement();
        let mut w = Replay::new(vec![Edge(1), Edge(2)]);
        let got = record(&mut w, &p, 5);
        assert_eq!(got, vec![Edge(1), Edge(2), Edge(1), Edge(2), Edge(1)]);
    }
}
