//! The always-on work-counter ledger behind the perf gate.
//!
//! Wall-clock is too noisy to gate on in shared CI, but every simulation
//! in this workspace is fully seeded — so the perf gate ([`rdbp_bench`]'s
//! `suite`/`perfgate` modules and the `rdbp-perfgate` binary) gates on
//! *deterministic work counters* instead: exact counts of the operations
//! the hot path performs (requests, migrations, policy-tree node visits,
//! journal records, …). Same scenario + same seed ⇒ bit-identical
//! counters, on any machine. This is the same style of cost accounting
//! the source paper uses to charge algorithms per migration rather than
//! per second; wall-clock stays in the bench reports as *informational*
//! context ("counters gate, wall-clock informs" — DESIGN.md §10).
//!
//! The counters are plain `u64` adds on single-threaded state (no
//! atomics anywhere near a serve loop), cheap enough to stay always-on:
//! the S2/S3 serve-throughput experiments bound the total overhead at
//! ~3% or less.
//!
//! Each layer owns the counters for the work it performs and
//! [`WorkCounters`] is the merged, serializable view:
//!
//! * the [`crate::Driver`] counts requests, audited steps and journal
//!   records it verified,
//! * [`crate::Placement`] counts migrations and incremental max-load
//!   updates,
//! * MTS policies (in `rdbp_mts`) count serve calls by shape
//!   (vector vs point fast path), hierarchy node visits, distribution
//!   cache hits and coupling follows, surfaced through
//!   `OnlineAlgorithm::work_counters`.

use serde::{Deserialize, Serialize};

/// Number of metrics in a [`WorkCounters`] (the arity of
/// [`WorkCounters::named`]).
pub const NUM_WORK_METRICS: usize = 12;

/// A merged snapshot of every deterministic work counter — the unit the
/// perf gate diffs. See the module docs for who counts what.
///
/// Counters are *transient* instrumentation: they are never part of a
/// snapshot/restore image and never affect behaviour, equality of
/// placements, or reports. They serialize (for `BENCH_*.json`) as an
/// object keyed by the [`WorkCounters::named`] metric names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkCounters {
    /// Requests this driver served (all audit levels).
    pub requests: u64,
    /// Requests that ran the full per-step audit.
    pub audited_steps: u64,
    /// Migration-journal records verified and drained by the audit.
    pub journal_records: u64,
    /// Actual process migrations performed by the placement.
    pub migrations: u64,
    /// Times the placement's incremental max-load value changed.
    pub max_load_updates: u64,
    /// MTS policy serves that took the cost-vector path.
    pub policy_serve_vector: u64,
    /// MTS policy serves that took the point (`serve_hit`) fast path.
    pub policy_serve_hit: u64,
    /// Hierarchy nodes whose Hedge weights were updated (`HstHedge`).
    pub hst_node_visits: u64,
    /// Serves that reused the cached leaf distribution (`HstHedge`).
    pub hst_cache_hits: u64,
    /// Quantile-coupling follow/resample operations (randomized
    /// policies).
    pub coupling_follows: u64,
    /// Cut-pair/window evaluations performed by offline oracles (the
    /// ring-loading solver's demands-across-cuts scan and the oracle's
    /// per-offset window scan).
    pub oracle_cut_evals: u64,
    /// Rounding/strategy-evaluation passes performed by offline oracles
    /// (unsplit rounding sweeps and candidate-rotation evaluations).
    pub oracle_rounding_passes: u64,
}

impl WorkCounters {
    /// The metrics as `(stable name, value)` pairs, in the pinned order
    /// the perf gate reports them. The names double as the
    /// `BENCH_*.json` field names — renaming one is a schema change.
    #[must_use]
    pub fn named(&self) -> [(&'static str, u64); NUM_WORK_METRICS] {
        [
            ("requests", self.requests),
            ("audited_steps", self.audited_steps),
            ("journal_records", self.journal_records),
            ("migrations", self.migrations),
            ("max_load_updates", self.max_load_updates),
            ("policy_serve_vector", self.policy_serve_vector),
            ("policy_serve_hit", self.policy_serve_hit),
            ("hst_node_visits", self.hst_node_visits),
            ("hst_cache_hits", self.hst_cache_hits),
            ("coupling_follows", self.coupling_follows),
            ("oracle_cut_evals", self.oracle_cut_evals),
            ("oracle_rounding_passes", self.oracle_rounding_passes),
        ]
    }

    /// Looks a metric up by its [`WorkCounters::named`] name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.named()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Adds every counter of `other` into `self` (used to aggregate
    /// across sessions or policy instances).
    pub fn merge(&mut self, other: &Self) {
        self.requests += other.requests;
        self.audited_steps += other.audited_steps;
        self.journal_records += other.journal_records;
        self.migrations += other.migrations;
        self.max_load_updates += other.max_load_updates;
        self.policy_serve_vector += other.policy_serve_vector;
        self.policy_serve_hit += other.policy_serve_hit;
        self.hst_node_visits += other.hst_node_visits;
        self.hst_cache_hits += other.hst_cache_hits;
        self.coupling_follows += other.coupling_follows;
        self.oracle_cut_evals += other.oracle_cut_evals;
        self.oracle_rounding_passes += other.oracle_rounding_passes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_covers_every_field_exactly_once() {
        // A counter set with every field distinct: `named` must surface
        // each value under its own name.
        let c = WorkCounters {
            requests: 1,
            audited_steps: 2,
            journal_records: 3,
            migrations: 4,
            max_load_updates: 5,
            policy_serve_vector: 6,
            policy_serve_hit: 7,
            hst_node_visits: 8,
            hst_cache_hits: 9,
            coupling_follows: 10,
            oracle_cut_evals: 11,
            oracle_rounding_passes: 12,
        };
        let named = c.named();
        assert_eq!(named.len(), NUM_WORK_METRICS);
        let values: Vec<u64> = named.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=12).collect::<Vec<u64>>());
        let mut names: Vec<&str> = named.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_WORK_METRICS, "metric names must be unique");
        assert_eq!(c.get("migrations"), Some(4));
        assert_eq!(c.get("no-such-metric"), None);
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = WorkCounters {
            requests: 10,
            migrations: 3,
            ..WorkCounters::default()
        };
        let b = WorkCounters {
            requests: 5,
            hst_node_visits: 7,
            ..WorkCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.migrations, 3);
        assert_eq!(a.hst_node_visits, 7);
    }

    #[test]
    fn serde_round_trip_preserves_every_metric() {
        let mut c = WorkCounters::default();
        c.requests = 42;
        c.coupling_follows = 99;
        let v = c.to_value();
        let back = WorkCounters::from_value(&v).unwrap();
        assert_eq!(back, c);
    }
}
