//! Exact interval-based optimum `OPT_R` (Lemma 3.3's comparator).
//!
//! The dynamic-model analysis compares the online algorithm to the
//! optimal *interval-based strategy*: independently for each interval,
//! the cheapest way to maintain a cut edge against the requests that
//! fall inside it — which is exactly the offline line-MTS optimum on
//! the interval's edges. This module rebuilds the interval geometry of
//! `rdbp_core::dynamic` (same `k′`, `ℓ′`, shift `R`; kept dependency-
//! free by re-deriving the ~20 lines of arithmetic — a cross-crate
//! consistency test in `tests/` pins the two implementations together)
//! and evaluates `OPT_R = Σ_I OPT_MTS(I)` exactly.

use rdbp_model::{Edge, RingInstance};
use rdbp_mts::offline;

/// The interval geometry of the dynamic-model algorithm.
#[derive(Debug, Clone, Copy)]
pub struct IntervalLayout {
    /// Ring size `n`.
    pub n: u32,
    /// Interval width `k′ = ⌈(1+ε)k⌉`.
    pub k_prime: u32,
    /// Number of intervals `ℓ′ = ⌈n/k′⌉`.
    pub ell_prime: u32,
    /// Shift `R ∈ {0,…,k′−1}`.
    pub shift: u32,
}

impl IntervalLayout {
    /// Derives the layout for an instance and augmentation ε, matching
    /// `rdbp_core::dynamic::DynamicPartitioner::new`.
    ///
    /// # Panics
    /// Panics if `ε ≤ 0` or `shift ≥ k′`.
    #[must_use]
    pub fn new(instance: &RingInstance, epsilon: f64, shift: u32) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let k_prime = (((1.0 + epsilon) * f64::from(instance.capacity())).ceil() as u32).max(1);
        assert!(shift < k_prime, "shift out of range");
        Self {
            n: instance.n(),
            k_prime,
            ell_prime: instance.n().div_ceil(k_prime),
            shift,
        }
    }

    /// The intervals containing edge `e` as `(interval, local state)`
    /// pairs: the body interval plus, in the wrap region, the tail of
    /// the last interval.
    #[must_use]
    pub fn locate(&self, e: Edge) -> Vec<(u32, u32)> {
        let n = u64::from(self.n);
        let kp = u64::from(self.k_prime);
        // `shift % n`: when k′ > n the shift can exceed the ring size.
        let o = (u64::from(e.0) + n - u64::from(self.shift) % n) % n;
        let mut out = Vec::with_capacity(2);
        let i1 = o / kp;
        out.push((i1 as u32, (o - i1 * kp) as u32));
        let last = u64::from(self.ell_prime) - 1;
        if o + n < u64::from(self.ell_prime) * kp && i1 != last {
            out.push((last as u32, (o + n - last * kp) as u32));
        }
        out
    }
}

/// Per-interval and total `OPT_R` for a request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalOpt {
    /// Exact line-MTS optimum per interval.
    pub per_interval: Vec<f64>,
    /// `Σ_I OPT_MTS(I)`.
    pub total: f64,
}

/// Computes `OPT_R` exactly: for every interval, collect the requests
/// that fall inside it as unit tasks over its `k′` edge-states and run
/// the exact line-MTS DP (initial state = middle, matching the online
/// algorithm's convention).
#[must_use]
pub fn interval_opt(layout: &IntervalLayout, requests: &[Edge]) -> IntervalOpt {
    let states = layout.k_prime as usize;
    let mut tasks: Vec<Vec<Vec<f64>>> = vec![Vec::new(); layout.ell_prime as usize];
    for &e in requests {
        for (i, local) in layout.locate(e) {
            let mut t = vec![0.0; states];
            t[local as usize] = 1.0;
            tasks[i as usize].push(t);
        }
    }
    let per_interval: Vec<f64> = tasks
        .iter()
        .map(|ts| offline::optimum(states, states / 2, ts))
        .collect();
    let total = per_interval.iter().sum();
    IntervalOpt {
        per_interval,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> IntervalLayout {
        // n=32, k=8, ε=0.5 → k′=12, ℓ′=3.
        IntervalLayout::new(&RingInstance::packed(4, 8), 0.5, 0)
    }

    #[test]
    fn geometry_matches_dynamic_partitioner_docs() {
        let l = layout();
        assert_eq!(l.k_prime, 12);
        assert_eq!(l.ell_prime, 3);
    }

    #[test]
    fn body_edges_land_in_one_interval() {
        let l = layout();
        assert_eq!(l.locate(Edge(5)), vec![(0, 5)]);
        assert_eq!(l.locate(Edge(13)), vec![(1, 1)]);
        assert_eq!(l.locate(Edge(24)), vec![(2, 0)]);
    }

    #[test]
    fn wrap_region_lands_in_two_intervals() {
        // ℓ′k′ = 36 > n = 32: offsets 0..3 are also the last interval's
        // tail states 8..11.
        let l = layout();
        assert_eq!(l.locate(Edge(0)), vec![(0, 0), (2, 8)]);
        assert_eq!(l.locate(Edge(3)), vec![(0, 3), (2, 11)]);
        assert_eq!(l.locate(Edge(4)), vec![(0, 4)]);
    }

    #[test]
    fn shifted_layout_moves_the_wrap() {
        let l = IntervalLayout::new(&RingInstance::packed(4, 8), 0.5, 5);
        assert_eq!(l.locate(Edge(5)), vec![(0, 0), (2, 8)]);
        assert_eq!(l.locate(Edge(4)), vec![(2, 7)]);
    }

    #[test]
    fn opt_r_of_empty_trace_is_zero() {
        let got = interval_opt(&layout(), &[]);
        assert_eq!(got.total, 0.0);
        assert_eq!(got.per_interval.len(), 3);
    }

    #[test]
    fn opt_r_dodges_a_hammered_edge() {
        // Hammer one edge: per affected interval, OPT_MTS pays ≤ the
        // distance to sidestep once.
        let l = layout();
        let reqs = vec![Edge(13); 200];
        let got = interval_opt(&l, &reqs);
        assert!(got.total <= 2.0, "OPT_R should sidestep, got {}", got.total);
    }

    #[test]
    fn opt_r_grows_with_spread_demand() {
        let l = layout();
        let reqs: Vec<Edge> = (0..240u32).map(|t| Edge(t % 32)).collect();
        let got = interval_opt(&l, &reqs);
        assert!(got.total > 0.0);
        // Never worse than paying every request in both intervals.
        assert!(got.total <= 2.0 * reqs.len() as f64);
    }
}
