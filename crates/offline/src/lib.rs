//! Offline optima, analysis comparators and adversaries for
//! ring-demand balanced partitioning.
//!
//! Competitive ratios cannot be *measured* without the other side of
//! the fraction; this crate provides every comparator the paper's
//! analysis uses, implemented exactly:
//!
//! * [`static_opt`] — optimal static partition via a cycle DP
//!   (comparator of Theorem 2.2), with a packing certificate.
//! * [`dynamic_opt`] — exact optimal dynamic algorithm by brute force
//!   over canonicalized configurations (comparator of Theorem 2.1,
//!   tiny instances).
//! * [`interval_opt`] — the interval-based optimum `OPT_R` of
//!   Lemma 3.3, exact per-interval line-MTS DP.
//! * [`WellBehaved`] — the well-behaved clustering strategy of
//!   Lemma 3.4 as an executable object that verifies the potential
//!   argument step by step.
//! * [`adversaries`] — the position-chasing adversary of Lemma 4.1 for
//!   the deterministic lower-bound experiments.
//! * [`OfflineOracle`] — one interchangeable comparator surface over
//!   all of the above (and over `rdbp_ringload`'s scalable ring-loading
//!   oracle), with a certified `lower_bound ≤ OPT ≤ upper_bound`
//!   contract (DESIGN.md §13).

pub mod adversaries;
mod dynamic_opt;
mod interval_opt;
mod oracle;
mod static_opt;
mod well_behaved;

pub use dynamic_opt::dynamic_opt;
pub use interval_opt::{interval_opt, IntervalLayout, IntervalOpt};
pub use oracle::{ExactDynamicOracle, IntervalOracle, OfflineOracle, OracleReport};
pub use static_opt::{static_opt, static_opt_bruteforce, StaticOpt};
pub use well_behaved::{WbStep, WellBehaved};
