//! Exact optimal *dynamic* offline cost for tiny instances.
//!
//! The true comparator of Theorem 2.1. Configurations are balanced
//! assignments quotiented by server relabeling (an unlabeled partition
//! of the processes into ≤ ℓ groups of ≤ k); the transition cost
//! between two configurations is the minimum number of process moves
//! over all label matchings. A forward DP over the request sequence
//! then yields the exact optimum. Exponential in `n` — intended for
//! `n ≤ 12` cross-validation runs (experiment F4), guarded by
//! assertions.

use std::collections::HashMap;

use rdbp_model::{Edge, Placement, RingInstance};

/// Exact optimal dynamic cost for serving `requests` starting from
/// `initial` (the model: communication is charged on the current
/// configuration, then migrations may happen).
///
/// # Panics
/// Panics if `n > 12` or `ℓ > 5` (state space too large), or if the
/// initial placement violates capacity.
#[must_use]
pub fn dynamic_opt(instance: &RingInstance, initial: &Placement, requests: &[Edge]) -> u64 {
    let n = instance.n() as usize;
    let ell = instance.servers() as usize;
    let k = instance.capacity();
    assert!(n <= 12, "dynamic OPT brute force limited to n ≤ 12");
    assert!(ell <= 5, "dynamic OPT brute force limited to ℓ ≤ 5");
    assert!(
        initial.max_load() <= k,
        "initial placement violates capacity"
    );

    let states = enumerate_partitions(n, ell, k as usize);
    let index: HashMap<Vec<u8>, usize> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), i))
        .collect();

    let initial_canon = canonicalize(
        &initial
            .assignment()
            .iter()
            .map(|&s| s as u8)
            .collect::<Vec<u8>>(),
    );
    let start = *index
        .get(&initial_canon)
        .expect("initial placement must be a feasible state");

    // Pairwise minimum-relabeling transition costs.
    let m = states.len();
    let mut trans = vec![0u32; m * m];
    for a in 0..m {
        for b in a..m {
            let c = min_moves(&states[a], &states[b], ell);
            trans[a * m + b] = c;
            trans[b * m + a] = c;
        }
    }

    // cost[s] = cheapest way to *be in configuration s after the
    // migrations of the previous step*. Communication is charged on the
    // pre-migration configuration ("after the communication an online
    // algorithm may decide to perform migrations" — the same ordering
    // binds the offline optimum).
    let mut cost = vec![u64::MAX; m];
    cost[start] = 0;
    for &Edge(e) in requests {
        let (u, v) = {
            let (a, b) = instance.endpoints(Edge(e));
            (a.0 as usize, b.0 as usize)
        };
        let mut next = vec![u64::MAX; m];
        for (p, &cp) in cost.iter().enumerate() {
            if cp == u64::MAX {
                continue;
            }
            let comm = u64::from(states[p][u] != states[p][v]);
            let base = cp + comm;
            for (s, nx) in next.iter_mut().enumerate() {
                let c = base + u64::from(trans[p * m + s]);
                if c < *nx {
                    *nx = c;
                }
            }
        }
        cost = next;
    }
    cost.into_iter().min().expect("nonempty state space")
}

/// All canonical partitions of `n` processes into ≤ `ell` groups of
/// size ≤ `k` (canonical = group labels in order of first appearance).
fn enumerate_partitions(n: usize, ell: usize, k: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cur = vec![0u8; n];
    let mut loads = vec![0usize; ell];
    #[allow(clippy::too_many_arguments)] // recursion state, all scalars
    fn rec(
        p: usize,
        n: usize,
        ell: usize,
        k: usize,
        used: usize,
        cur: &mut Vec<u8>,
        loads: &mut Vec<usize>,
        out: &mut Vec<Vec<u8>>,
    ) {
        if p == n {
            out.push(cur.clone());
            return;
        }
        let limit = (used + 1).min(ell);
        for g in 0..limit {
            if loads[g] == k {
                continue;
            }
            cur[p] = g as u8;
            loads[g] += 1;
            rec(p + 1, n, ell, k, used.max(g + 1), cur, loads, out);
            loads[g] -= 1;
        }
    }
    rec(0, n, ell, k, 0, &mut cur, &mut loads, &mut out);
    out
}

/// Canonical form: relabel groups in order of first appearance.
fn canonicalize(assignment: &[u8]) -> Vec<u8> {
    let mut map: HashMap<u8, u8> = HashMap::new();
    let mut next = 0u8;
    assignment
        .iter()
        .map(|&g| {
            *map.entry(g).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect()
}

/// Minimum process moves to go from partition `a` to partition `b`,
/// over all relabelings of `b`'s groups (brute-force permutations over
/// ≤ 5 groups).
fn min_moves(a: &[u8], b: &[u8], ell: usize) -> u32 {
    let n = a.len();
    // overlap[i][j] = |a-group i ∩ b-group j|
    let mut overlap = vec![vec![0u32; ell]; ell];
    for p in 0..n {
        overlap[a[p] as usize][b[p] as usize] += 1;
    }
    // Maximize matched overlap over permutations π: b-group j ↦ a-group
    // π(j).
    let mut perm: Vec<usize> = (0..ell).collect();
    let mut best = 0u32;
    permute(&mut perm, 0, &mut |perm| {
        let matched: u32 = (0..ell).map(|j| overlap[perm[j]][j]).sum();
        if matched > best {
            best = matched;
        }
    });
    n as u32 - best
}

fn permute(perm: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    if i == perm.len() {
        f(perm);
        return;
    }
    for j in i..perm.len() {
        perm.swap(i, j);
        permute(perm, i + 1, f);
        perm.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> RingInstance {
        RingInstance::new(6, 2, 3)
    }

    #[test]
    fn empty_sequence_costs_nothing() {
        let i = inst();
        let p = Placement::contiguous(&i);
        assert_eq!(dynamic_opt(&i, &p, &[]), 0);
    }

    #[test]
    fn single_request_on_cut_edge_costs_one() {
        // Initial: 000111, request edge (2,3). OPT pays the request (1)
        // or migrates (also ≥ 1); either way exactly 1, because the
        // model charges communication before migration.
        let i = inst();
        let p = Placement::contiguous(&i);
        assert_eq!(dynamic_opt(&i, &p, &[Edge(2)]), 1);
    }

    #[test]
    fn repeated_cut_requests_favor_one_migration() {
        // Hammer edge (2,3) 10 times: pay 1 (first request), migrate one
        // process across (1) and swap another back to stay balanced (1),
        // total 3 — much better than paying 10.
        let i = inst();
        let p = Placement::contiguous(&i);
        let reqs = vec![Edge(2); 10];
        let opt = dynamic_opt(&i, &p, &reqs);
        assert_eq!(opt, 3);
    }

    #[test]
    fn uncut_requests_are_free() {
        let i = inst();
        let p = Placement::contiguous(&i);
        let reqs = vec![Edge(0), Edge(1), Edge(3), Edge(4)];
        assert_eq!(dynamic_opt(&i, &p, &reqs), 0);
    }

    #[test]
    fn rotating_demand_forces_repeated_cost() {
        // Request every edge once per lap: any balanced partition of a
        // 6-ring into two triples has 2 cut edges, so OPT pays ≥ 2 per
        // lap or migrates.
        let i = inst();
        let p = Placement::contiguous(&i);
        let reqs: Vec<Edge> = (0..18u32).map(|t| Edge(t % 6)).collect();
        let opt = dynamic_opt(&i, &p, &reqs);
        assert!(opt >= 6, "3 laps × 2 cuts, got {opt}");
        assert!(opt <= 6, "staying put costs exactly 6, got {opt}");
    }

    #[test]
    fn opt_never_exceeds_lazy_cost() {
        use rdbp_model::workload::{record, UniformRandom, Workload};
        let i = inst();
        let p = Placement::contiguous(&i);
        let mut w = UniformRandom::new(3);
        let reqs = record(&mut w, &p, 60);
        let opt = dynamic_opt(&i, &p, &reqs);
        let lazy: u64 = reqs.iter().map(|&e| u64::from(p.is_cut(e))).sum();
        assert!(opt <= lazy, "opt {opt} > lazy {lazy}");
        let _ = w.name();
    }

    #[test]
    fn canonicalization_merges_relabelings() {
        assert_eq!(canonicalize(&[1, 1, 0, 0]), vec![0, 0, 1, 1]);
        assert_eq!(canonicalize(&[2, 0, 2, 1]), vec![0, 1, 0, 2]);
    }

    #[test]
    fn min_moves_finds_best_matching() {
        // 000111 → 111000 is free after relabeling.
        assert_eq!(min_moves(&[0, 0, 0, 1, 1, 1], &[1, 1, 1, 0, 0, 0], 2), 0);
        // One process swapped across.
        assert_eq!(min_moves(&[0, 0, 0, 1, 1, 1], &[0, 0, 1, 0, 1, 1], 2), 2);
    }

    #[test]
    #[should_panic(expected = "n ≤ 12")]
    fn rejects_large_instances() {
        let i = RingInstance::new(16, 2, 8);
        let p = Placement::contiguous(&i);
        let _ = dynamic_opt(&i, &p, &[]);
    }
}
