//! Adversarial request builders for the lower-bound experiments.

/// Outcome of chasing a deterministic line strategy (Lemma 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseReport {
    /// Total online cost (hits + movement).
    pub online: u64,
    /// Optimal static cost on the generated sequence:
    /// `min_e (d(start, e) + x_e)`.
    pub opt_static: u64,
    /// Requests issued.
    pub steps: u64,
}

/// Drives a deterministic hitting strategy on a line of `k` edges with
/// the position-chasing adversary of Lemma 4.1: every request targets
/// the strategy's current edge.
///
/// `strategy` receives `(requested edge, per-edge request counts)` and
/// returns the strategy's next position; hits and movement are charged
/// per the hitting-game rules. Any deterministic strategy ends with
/// `online ≥ Ω(k) · opt_static` as `steps → ∞`.
///
/// # Panics
/// Panics if the strategy returns an out-of-range position or `k == 0`.
pub fn chase_line_strategy(
    k: usize,
    start: usize,
    steps: u64,
    mut strategy: impl FnMut(usize, &[u64]) -> usize,
) -> ChaseReport {
    assert!(k > 0, "need at least one edge");
    assert!(start < k, "start out of range");
    let mut x = vec![0u64; k];
    let mut pos = start;
    let mut online = 0u64;
    for _ in 0..steps {
        let request = pos;
        x[request] += 1;
        let next = strategy(request, &x);
        assert!(next < k, "strategy left the line");
        if next == request {
            online += 1; // hit
        }
        online += pos.abs_diff(next) as u64;
        pos = next;
    }
    let opt_static = (0..k)
        .map(|e| x[e] + e.abs_diff(start) as u64)
        .min()
        .expect("nonempty line");
    ChaseReport {
        online,
        opt_static,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stay_put_pays_every_step() {
        let r = chase_line_strategy(8, 4, 100, |req, _| req);
        assert_eq!(r.online, 100);
        // OPT slips one edge over: distance 1, zero hits.
        assert_eq!(r.opt_static, 1);
    }

    #[test]
    fn flee_to_least_hit_edge_still_pays_travel() {
        let k = 16;
        let r = chase_line_strategy(k, 8, 2000, |_, x| (0..k).min_by_key(|&e| x[e]).unwrap());
        // The adversary forces Ω(k)·OPT: the ratio must be large.
        assert!(
            r.online as f64 >= 0.5 * k as f64 * r.opt_static.max(1) as f64,
            "online {} opt {}",
            r.online,
            r.opt_static
        );
    }

    #[test]
    fn ratio_grows_linearly_in_k() {
        // Lemma 4.1 empirically: deterministic ratio scales with k.
        let ratio = |k: usize| {
            let r = chase_line_strategy(k, k / 2, (k * k * 4) as u64, |_, x| {
                (0..k).min_by_key(|&e| x[e]).unwrap()
            });
            r.online as f64 / r.opt_static.max(1) as f64
        };
        let r8 = ratio(8);
        let r32 = ratio(32);
        assert!(
            r32 > 2.0 * r8,
            "ratio must grow with k: r8={r8:.1} r32={r32:.1}"
        );
    }
}
