//! Exact optimal static partition on the cycle.
//!
//! A static algorithm chooses one balanced placement up front; its
//! communication cost is the total request weight on its cut edges (the
//! ring edges whose endpoints sit on different servers). Minimizing over
//! placements therefore reduces to choosing a **cut set** on the cycle
//! such that every arc between consecutive cuts has at most `k`
//! processes and the arcs can be packed into `ℓ` servers of capacity
//! `k`.
//!
//! We solve the relaxation that drops the packing constraint (arcs ≤ k
//! only) exactly with a cycle DP, which is a certified **lower bound**
//! on the optimal static cost — ratios computed against it are upper
//! bounds on the true competitive ratio, i.e. conservative. A first-fit
//! decreasing pack of the optimal relaxed arcs then certifies, when it
//! succeeds, that the bound is **tight** (the relaxed solution is a
//! feasible placement). Initial migration cost is excluded (a static
//! algorithm pays it once; excluding it again only makes reported
//! ratios conservative). See DESIGN.md §1.

/// Result of the static-OPT computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticOpt {
    /// Minimum total weight of a cut set with all arcs ≤ k (certified
    /// lower bound on the optimal static communication cost).
    pub weight: u64,
    /// The optimal cut set (edge indices, ascending).
    pub cuts: Vec<u32>,
    /// Whether the optimal arcs pack into `ℓ` bins of capacity `k`
    /// under first-fit decreasing — if `true`, `weight` is exactly the
    /// optimal static communication cost.
    pub packable: bool,
}

/// Computes the optimal static cut set for per-edge request weights
/// `w` on a cycle of `n = w.len()` processes with `ℓ` servers of
/// capacity `k`.
///
/// Runs in O(n·min(k,n)) time via a sliding-window-minimum DP anchored
/// at each possible "first cut" within one capacity window.
///
/// # Panics
/// Panics if `w` is empty, `k == 0`, or `ℓ·k < n`.
#[must_use]
pub fn static_opt(w: &[u64], servers: u32, k: u32) -> StaticOpt {
    let n = w.len();
    assert!(n > 0, "empty weight vector");
    assert!(k > 0, "capacity must be positive");
    assert!(
        u64::from(servers) * u64::from(k) >= n as u64,
        "instance infeasible"
    );
    if n as u64 <= u64::from(k) {
        // Everything fits on one server: no cut needed.
        return StaticOpt {
            weight: 0,
            cuts: Vec::new(),
            packable: true,
        };
    }
    let k = k as usize;

    let mut best: Option<(u64, Vec<u32>)> = None;
    // Some cut must lie within any window of k consecutive edges; anchor
    // on each candidate first cut in edges 0..k.
    for first in 0..k.min(n) {
        if let Some((cost, cuts)) = anchored_dp(w, n, k, first) {
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, cuts));
            }
        }
    }
    let (weight, cuts) = best.expect("at least one anchored solution exists");
    let packable = ffd_packs(&cuts, n as u32, servers, k as u32);
    StaticOpt {
        weight,
        cuts,
        packable,
    }
}

/// DP with a forced cut at edge `first`: positions walk the cycle from
/// `first`, every consecutive pair of cuts at distance ≤ k, and the
/// wrap-around gap back to `first` also ≤ k.
fn anchored_dp(w: &[u64], n: usize, k: usize, first: usize) -> Option<(u64, Vec<u32>)> {
    // dp[j] = min weight of cuts among positions first..=first+j (cyclic)
    // with a cut at offset j (and at offset 0), gaps ≤ k.
    let mut dp = vec![u64::MAX; n];
    let mut parent = vec![usize::MAX; n];
    dp[0] = w[first];
    // Monotonic deque over the sliding window of the last k offsets.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    deque.push_back(0);
    for j in 1..n {
        while let Some(&front) = deque.front() {
            if front + k < j {
                deque.pop_front();
            } else {
                break;
            }
        }
        let q = *deque.front()?;
        if dp[q] == u64::MAX {
            return None;
        }
        dp[j] = dp[q] + w[(first + j) % n];
        parent[j] = q;
        while let Some(&back) = deque.back() {
            if dp[back] >= dp[j] {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(j);
    }
    // Close the cycle: last cut at offset j with j + gap back to first
    // (= n − j) ≤ k.
    let mut best: Option<(u64, usize)> = None;
    for (j, &v) in dp.iter().enumerate().take(n).skip(n.saturating_sub(k)) {
        if v != u64::MAX && best.is_none_or(|(b, _)| v < b) {
            best = Some((v, j));
        }
    }
    let (cost, mut j) = best?;
    let mut cuts = Vec::new();
    while j != usize::MAX {
        cuts.push(((first + j) % n) as u32);
        if j == 0 {
            break;
        }
        j = parent[j];
    }
    cuts.sort_unstable();
    Some((cost, cuts))
}

/// First-fit-decreasing pack of the arcs induced by `cuts` into
/// `servers` bins of capacity `k`.
fn ffd_packs(cuts: &[u32], n: u32, servers: u32, k: u32) -> bool {
    if cuts.is_empty() {
        return n <= k;
    }
    let mut arcs: Vec<u32> = cuts
        .windows(2)
        .map(|p| p[1] - p[0])
        .chain(std::iter::once(cuts[0] + n - cuts[cuts.len() - 1]))
        .collect();
    arcs.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins = vec![0u32; servers as usize];
    'outer: for arc in arcs {
        for b in &mut bins {
            if *b + arc <= k {
                *b += arc;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Brute-force reference: enumerate all cut subsets (tiny `n` only),
/// with gaps ≤ k; returns the minimum weight (the same relaxation the
/// DP solves).
///
/// # Panics
/// Panics if `n > 20` (subset enumeration explodes).
#[must_use]
pub fn static_opt_bruteforce(w: &[u64], k: u32) -> u64 {
    let n = w.len();
    assert!(n <= 20, "brute force limited to tiny instances");
    if n as u64 <= u64::from(k) {
        return 0;
    }
    let mut best = u64::MAX;
    for mask in 1u32..(1 << n) {
        let cuts: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let mut ok = true;
        for i in 0..cuts.len() {
            let next = cuts[(i + 1) % cuts.len()];
            let gap = if i + 1 == cuts.len() {
                next + n - cuts[i]
            } else {
                next - cuts[i]
            };
            if gap as u64 > u64::from(k) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let weight: u64 = cuts.iter().map(|&i| w[i]).sum();
        best = best.min(weight);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_needs_no_cuts() {
        let opt = static_opt(&[5, 5, 5, 5], 1, 4);
        assert_eq!(opt.weight, 0);
        assert!(opt.cuts.is_empty());
        assert!(opt.packable);
    }

    #[test]
    fn picks_the_lightest_feasible_cuts() {
        // n=6, k=3: need cuts with gaps ≤ 3. Weights favor edges 1 and 4.
        let w = [10, 0, 10, 10, 0, 10];
        let opt = static_opt(&w, 2, 3);
        assert_eq!(opt.weight, 0);
        assert_eq!(opt.cuts, vec![1, 4]);
        assert!(opt.packable);
    }

    #[test]
    fn forced_expensive_cut() {
        // All edges heavy: with n=4, k=2, ℓ=2 the best is the two
        // lightest opposite edges.
        let w = [7, 3, 9, 4];
        let opt = static_opt(&w, 2, 2);
        assert_eq!(opt.weight, 3 + 4);
        assert_eq!(opt.cuts, vec![1, 3]);
    }

    #[test]
    fn gap_constraint_forces_extra_cuts() {
        // One very cheap edge is not enough: gaps must stay ≤ k.
        let w = [0, 100, 100, 100, 100, 100];
        let opt = static_opt(&w, 3, 2);
        // Cuts every ≤2 edges: at least 3 cuts; cheapest includes edge 0.
        assert!(opt.cuts.contains(&0));
        assert_eq!(opt.cuts.len(), 3);
        assert_eq!(opt.weight, 200);
    }

    #[test]
    fn matches_bruteforce_on_small_cases() {
        let cases: Vec<(Vec<u64>, u32)> = vec![
            (vec![1, 2, 3, 4, 5, 6], 2),
            (vec![9, 1, 1, 9, 9, 1, 1, 9], 3),
            (vec![0, 0, 0, 0], 1),
            (vec![5, 4, 3, 2, 1, 0, 1, 2, 3, 4], 4),
            (vec![1; 12], 3),
        ];
        for (w, k) in cases {
            let servers = (w.len() as u32).div_ceil(k).max(1) + 1;
            let fast = static_opt(&w, servers, k).weight;
            let slow = static_opt_bruteforce(&w, k);
            assert_eq!(fast, slow, "w={w:?} k={k}");
        }
    }

    #[test]
    fn cuts_reconstruction_is_consistent() {
        let w = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let opt = static_opt(&w, 4, 3);
        let total: u64 = opt.cuts.iter().map(|&c| w[c as usize]).sum();
        assert_eq!(total, opt.weight);
        // All gaps ≤ k.
        let n = w.len() as u32;
        for i in 0..opt.cuts.len() {
            let a = opt.cuts[i];
            let b = opt.cuts[(i + 1) % opt.cuts.len()];
            let gap = if i + 1 == opt.cuts.len() {
                b + n - a
            } else {
                b - a
            };
            assert!(gap <= 3, "gap {gap} > k");
        }
    }

    #[test]
    fn packing_certificate_detects_balanced_arcs() {
        let w = [1u64; 8];
        let opt = static_opt(&w, 2, 4);
        assert!(opt.packable);
        assert_eq!(opt.cuts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_infeasible_instance() {
        let _ = static_opt(&[1, 1, 1, 1], 1, 3);
    }
}
