//! Executable well-behaved clustering strategy (Lemma 3.4).
//!
//! The dynamic-model analysis shows that *some* strategy maintaining
//! cut edges `E_W ⊆ E_O` (a subset of the reference algorithm's cut
//! edges) pays, amortized against the potential
//!
//! ```text
//! Φ = (1+ε)/ε · ln(k′) · M  +  Σ_S |S| · ln(k′/|S|),   k′ = (1+ε)k
//! ```
//!
//! at most `(1+ε)/ε · ln(k′) · o_t` per step, where `o_t` is the number
//! of processes the reference moved and `M` counts marked processes.
//! This module *runs* that strategy against any reference trace and
//! verifies the per-step amortized inequality and all three invariants
//! (IH: `E_W ⊆ E_O`; IM: segments δ-monochromatic for `δ = 1/(1+ε)`;
//! IS: non-majority processes marked) — Lemma 3.4 as a property test.

use std::collections::BTreeSet;

use rdbp_model::{Edge, Placement, RingInstance};

/// Outcome of one simulated step.
#[derive(Debug, Clone, Copy)]
pub struct WbStep {
    /// Adjustment (moving) cost paid this step.
    pub moving_cost: u64,
    /// Change in potential.
    pub delta_phi: f64,
    /// Processes the reference moved this step (`o_t`).
    pub reference_moves: u64,
    /// Whether the request hit a W cut edge.
    pub hit: bool,
    /// Whether the amortized bound
    /// `moving_cost + ΔΦ ≤ (1+ε)/ε·ln(k′)·o_t` held.
    pub amortized_ok: bool,
}

/// The well-behaved strategy simulator (see module docs).
#[derive(Debug)]
pub struct WellBehaved {
    n: u32,
    epsilon: f64,
    k_prime: f64,
    delta: f64,
    cuts: BTreeSet<u32>,
    marked: Vec<bool>,
    reference: Vec<u32>,
    /// Accumulated hitting cost.
    pub hitting: u64,
    /// Accumulated moving (adjustment) cost.
    pub moving: u64,
    phi: f64,
    /// Φ at construction (the additive term of Lemma 3.4).
    pub phi_initial: f64,
}

impl WellBehaved {
    /// Creates the strategy from the reference algorithm's initial
    /// placement: `E_W = E_O`, no marks.
    ///
    /// # Panics
    /// Panics if `ε ≤ 0`.
    #[must_use]
    pub fn new(instance: &RingInstance, initial_reference: &Placement, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let n = instance.n();
        let cuts: BTreeSet<u32> = initial_reference.cut_edges().map(|e| e.0).collect();
        let mut wb = Self {
            n,
            epsilon,
            k_prime: (1.0 + epsilon) * f64::from(instance.capacity()),
            delta: 1.0 / (1.0 + epsilon),
            cuts,
            marked: vec![false; n as usize],
            reference: initial_reference.assignment().to_vec(),
            hitting: 0,
            moving: 0,
            phi: 0.0,
            phi_initial: 0.0,
        };
        wb.phi = wb.potential();
        wb.phi_initial = wb.phi;
        wb
    }

    /// Current cut set `E_W`.
    #[must_use]
    pub fn cuts(&self) -> &BTreeSet<u32> {
        &self.cuts
    }

    /// Simulates one step: the request is served (hit accounting), the
    /// reference's post-step placement is diffed (marks), and the
    /// merge/move/cut-out/split adjustments restore the invariants.
    pub fn step(&mut self, request: Edge, reference_after: &Placement) -> WbStep {
        // Hitting: request on a W cut edge. IH guarantees this is also a
        // reference cut (checked below before the reference moves).
        let hit = self.cuts.contains(&request.0);
        if hit {
            self.hitting += 1;
            debug_assert!(
                self.is_reference_cut(request.0),
                "IH violated: W cut {} not a reference cut",
                request.0
            );
        }

        // Mark the reference's migrations.
        let mut o_t = 0;
        for p in 0..self.n as usize {
            let now = reference_after.assignment()[p];
            if now != self.reference[p] {
                self.reference[p] = now;
                if !self.marked[p] {
                    self.marked[p] = true;
                }
                o_t += 1;
            }
        }

        let phi_before = self.phi;
        let mut moving_cost = 0;

        // Restore IH: handle every W cut that is no longer a reference
        // cut.
        while let Some(stale) = self
            .cuts
            .iter()
            .copied()
            .find(|&e| !self.is_reference_cut(e))
        {
            moving_cost += self.fix_stale_cut(stale);
        }

        // Restore IM: full split of non-δ-monochromatic segments.
        self.split_all();

        self.phi = self.potential();
        let delta_phi = self.phi - phi_before;
        let bound = (1.0 + self.epsilon) / self.epsilon * self.k_prime.ln() * o_t as f64;
        let amortized_ok = moving_cost as f64 + delta_phi <= bound + 1e-6;
        self.moving += moving_cost;
        WbStep {
            moving_cost,
            delta_phi,
            reference_moves: o_t,
            hit,
            amortized_ok,
        }
    }

    /// Verifies invariants IH, IM, IS and the segment-size bound.
    ///
    /// # Panics
    /// Panics on violation.
    pub fn check_invariants(&self) {
        for &e in &self.cuts {
            assert!(self.is_reference_cut(e), "IH: stale W cut {e}");
        }
        for (start, len) in self.segments() {
            assert!(
                f64::from(len) <= self.k_prime + 1e-9,
                "segment of {len} exceeds (1+ε)k = {}",
                self.k_prime
            );
            let (maj, cnt) = self.majority(start, len);
            assert!(
                f64::from(cnt) >= self.delta * f64::from(len) - 1e-9,
                "IM: segment [{start},+{len}) not δ-monochromatic"
            );
            for i in 0..len {
                let p = ((start + i) % self.n) as usize;
                if self.reference[p] != maj {
                    assert!(self.marked[p], "IS: non-majority process {p} unmarked");
                }
            }
        }
    }

    fn is_reference_cut(&self, e: u32) -> bool {
        let a = self.reference[e as usize];
        let b = self.reference[((e + 1) % self.n) as usize];
        a != b
    }

    /// Handles one W cut `e_j ∉ E_O` via merge / move / cut-out.
    fn fix_stale_cut(&mut self, ej: u32) -> u64 {
        let (left_cut, right_cut) = self.neighbors(ej);
        let l_len = (ej + self.n - left_cut) % self.n;
        let r_len = (right_cut + self.n - ej) % self.n;
        let (l_len, r_len) = (
            if self.cuts.len() == 1 { self.n } else { l_len },
            if self.cuts.len() == 1 { self.n } else { r_len },
        );
        let (c_l, _) = self.majority((left_cut + 1) % self.n, l_len.max(1));
        let (c_r, _) = self.majority((ej + 1) % self.n, r_len.max(1));

        if c_l == c_r {
            // Merge: drop e_j, pay the smaller side.
            self.cuts.remove(&ej);
            return u64::from(l_len.min(r_len));
        }
        // Nearest reference cuts around e_j: F = (el, er] is
        // single-colored by construction.
        let el = self.nearest_reference_cut_left(ej);
        let er = self.nearest_reference_cut_right(ej);
        let c = self.reference[((ej + 1) % self.n) as usize];
        debug_assert_eq!(self.reference[ej as usize], c, "F must be single-colored");

        let d_left = (ej + self.n - el) % self.n;
        let d_right = (er + self.n - ej) % self.n;
        if c_l == c {
            // Move e_j → er; unmark F ∩ R = (e_j, er].
            self.cuts.remove(&ej);
            self.cuts.insert(er);
            self.unmark_range((ej + 1) % self.n, d_right);
            u64::from(d_right)
        } else if c_r == c {
            // Move e_j → el; unmark F ∩ L = (el, e_j].
            self.cuts.remove(&ej);
            self.cuts.insert(el);
            self.unmark_range((el + 1) % self.n, d_left);
            u64::from(d_left)
        } else {
            // Cut-out: move e_j to the nearer of el/er and split at the
            // other; F becomes a 1-monochromatic segment; unmark F.
            self.cuts.remove(&ej);
            self.cuts.insert(el);
            self.cuts.insert(er);
            let f_len = (er + self.n - el) % self.n;
            self.unmark_range((el + 1) % self.n, f_len);
            u64::from(d_left.min(d_right))
        }
    }

    /// Splits every non-δ-monochromatic segment along all reference
    /// cuts inside it, unmarking its processes.
    fn split_all(&mut self) {
        loop {
            let mut to_split: Option<(u32, u32)> = None;
            for (start, len) in self.segments() {
                let (_, cnt) = self.majority(start, len);
                if f64::from(cnt) <= self.delta * f64::from(len) - 1e-12
                    || f64::from(len) > self.k_prime
                {
                    to_split = Some((start, len));
                    break;
                }
            }
            let Some((start, len)) = to_split else {
                return;
            };
            let mut inserted = false;
            for i in 0..len {
                let e = (start + i) % self.n;
                if self.is_reference_cut(e) && !self.cuts.contains(&e) {
                    self.cuts.insert(e);
                    inserted = true;
                }
            }
            for i in 0..len {
                self.marked[((start + i) % self.n) as usize] = false;
            }
            assert!(
                inserted,
                "split of segment [{start},+{len}) found no reference cut — \
                 the reference itself violates capacity"
            );
        }
    }

    /// Segments `(start, len)` between consecutive W cuts.
    fn segments(&self) -> Vec<(u32, u32)> {
        let cuts: Vec<u32> = self.cuts.iter().copied().collect();
        if cuts.is_empty() {
            return vec![(0, self.n)];
        }
        let m = cuts.len();
        (0..m)
            .map(|i| {
                let start = (cuts[i] + 1) % self.n;
                let len = if m == 1 {
                    self.n
                } else {
                    (cuts[(i + 1) % m] + self.n - cuts[i]) % self.n
                };
                (start, len)
            })
            .collect()
    }

    /// Neighboring W cuts around `e` (predecessor, successor).
    fn neighbors(&self, e: u32) -> (u32, u32) {
        let prev = self
            .cuts
            .range(..e)
            .next_back()
            .or_else(|| self.cuts.iter().next_back())
            .copied()
            .expect("cuts nonempty");
        let next = self
            .cuts
            .range(e + 1..)
            .next()
            .or_else(|| self.cuts.iter().next())
            .copied()
            .expect("cuts nonempty");
        (prev, next)
    }

    fn nearest_reference_cut_left(&self, e: u32) -> u32 {
        for d in 1..=self.n {
            let cand = (e + self.n - d) % self.n;
            if self.is_reference_cut(cand) {
                return cand;
            }
        }
        unreachable!("reference has at least one cut when W does");
    }

    fn nearest_reference_cut_right(&self, e: u32) -> u32 {
        for d in 1..=self.n {
            let cand = (e + d) % self.n;
            if self.is_reference_cut(cand) {
                return cand;
            }
        }
        unreachable!("reference has at least one cut when W does");
    }

    fn unmark_range(&mut self, start: u32, len: u32) {
        for i in 0..len {
            self.marked[((start + i) % self.n) as usize] = false;
        }
    }

    /// Majority color of a segment under the *current* reference
    /// colors.
    fn majority(&self, start: u32, len: u32) -> (u32, u32) {
        let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut best = (u32::MAX, 0);
        for i in 0..len {
            let c = self.reference[((start + i) % self.n) as usize];
            let e = counts.entry(c).or_insert(0);
            *e += 1;
            if *e > best.1 || (*e == best.1 && c < best.0) {
                best = (c, *e);
            }
        }
        best
    }

    fn potential(&self) -> f64 {
        let marks = self.marked.iter().filter(|&&m| m).count() as f64;
        let mark_term = (1.0 + self.epsilon) / self.epsilon * self.k_prime.ln() * marks;
        let seg_term: f64 = self
            .segments()
            .iter()
            .map(|&(_, len)| {
                if len == 0 {
                    0.0
                } else {
                    f64::from(len) * (self.k_prime / f64::from(len)).ln()
                }
            })
            .sum();
        mark_term + seg_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdbp_model::Process;
    use rdbp_model::Server;

    fn setup() -> (RingInstance, Placement) {
        let inst = RingInstance::new(12, 3, 4);
        (inst, Placement::contiguous(&inst))
    }

    #[test]
    fn starts_with_reference_cuts_and_zero_marks() {
        let (inst, p) = setup();
        let wb = WellBehaved::new(&inst, &p, 0.25);
        assert_eq!(wb.cuts().len(), 3);
        wb.check_invariants();
        assert!(wb.phi_initial > 0.0);
    }

    #[test]
    fn static_reference_only_accrues_hits() {
        let (inst, p) = setup();
        let mut wb = WellBehaved::new(&inst, &p, 0.25);
        for t in 0..48u32 {
            let s = wb.step(Edge(t % 12), &p);
            assert_eq!(s.reference_moves, 0);
            assert_eq!(s.moving_cost, 0);
            assert!(s.amortized_ok);
        }
        assert_eq!(wb.hitting, 4 * 3, "3 cuts hit once per lap × 4 laps");
        assert_eq!(wb.moving, 0);
        wb.check_invariants();
    }

    #[test]
    fn reference_migration_marks_and_adjusts() {
        let (inst, p) = setup();
        let mut wb = WellBehaved::new(&inst, &p, 0.25);
        let mut moved = p.clone();
        // Reference swaps p3 (server 0) and p4 (server 1): cut edges
        // shift from {3,…} to {2, 4,…}.
        moved.migrate(Process(3), Server(1));
        moved.migrate(Process(4), Server(0));
        let s = wb.step(Edge(0), &moved);
        assert_eq!(s.reference_moves, 2);
        assert!(s.amortized_ok, "ΔΦ {} cost {}", s.delta_phi, s.moving_cost);
        wb.check_invariants();
    }

    #[test]
    fn drifting_reference_keeps_amortized_bound() {
        // The reference rotates its partition boundary around the ring;
        // every step must satisfy the Lemma 3.4 inequality.
        let inst = RingInstance::new(16, 2, 8);
        let initial = Placement::contiguous(&inst);
        let mut wb = WellBehaved::new(&inst, &initial, 0.25);
        let mut reference = initial.clone();
        for t in 0..200u32 {
            // Rotate by one process every 4 steps: keep loads 8/8 by
            // moving the head of each block.
            if t % 4 == 3 {
                let shift = t / 4 % 16;
                let a = Process(shift % 16);
                let b = Process((shift + 8) % 16);
                let sa = reference.server(a);
                let sb = reference.server(b);
                reference.migrate(a, sb);
                reference.migrate(b, sa);
            }
            let s = wb.step(Edge(t % 16), &reference);
            assert!(
                s.amortized_ok,
                "step {t}: cost {} + ΔΦ {} > bound for o_t={}",
                s.moving_cost, s.delta_phi, s.reference_moves
            );
            wb.check_invariants();
        }
        assert!(wb.moving > 0, "adjustments must have happened");
    }

    #[test]
    fn hitting_never_exceeds_reference_hits() {
        let (inst, p) = setup();
        let mut wb = WellBehaved::new(&inst, &p, 0.5);
        let mut ref_hits = 0u64;
        for t in 0..120u32 {
            let e = Edge((t * 5) % 12);
            if p.is_cut(e) {
                ref_hits += 1;
            }
            wb.step(e, &p);
        }
        assert!(wb.hitting <= ref_hits);
    }
}
