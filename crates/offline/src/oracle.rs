//! The [`OfflineOracle`] trait: interchangeable offline comparators.
//!
//! Every ratio experiment needs the other side of the fraction, but the
//! exact solvers in this crate have wildly different feasibility
//! envelopes: [`crate::dynamic_opt`] is exact and tiny (n ≤ 12),
//! [`crate::interval_opt`] is exact per interval but only a
//! constant-factor comparator, and the ring-loading oracle in
//! `rdbp_ringload` scales to tens of thousands of processes. The trait
//! makes them interchangeable behind one surface so the sim binary, the
//! engine registry and the `exp_*` sweeps can swap comparators with a
//! flag (DESIGN.md §13).
//!
//! ## Tolerance contract
//!
//! * [`OfflineOracle::lower_bound`] must return a **certified lower
//!   bound** on the cost (communication + migrations) of *any* offline
//!   schedule that respects capacity `k`, starting from `initial` —
//!   with one documented exception: [`IntervalOracle`] returns the raw
//!   `OPT_R` comparator of Lemma 3.3, which lower-bounds the optimum
//!   only up to that lemma's constant. `0.0` is always sound, and is
//!   what oracles return outside their feasible envelope.
//! * [`OfflineOracle::opt_cost`] returns the **exact** optimum when the
//!   oracle can certify it, `None` otherwise.
//! * [`OfflineOracle::upper_bound`] returns the cost of an explicit
//!   feasible schedule (an upper bound on the optimum); by default the
//!   exact optimum itself.
//!
//! So for every oracle and instance:
//! `lower_bound ≤ OPT ≤ upper_bound` (when the latter is `Some`), and
//! `tests/ringload_oracle.rs` machine-checks the sandwich against
//! [`crate::dynamic_opt`] wherever the exact solver is feasible.

use rdbp_model::{Edge, Placement, RingInstance, WorkCounters};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::{dynamic_opt, interval_opt, IntervalLayout};

/// An interchangeable offline comparator for ratio experiments.
///
/// Methods take `&mut self` so implementations can keep deterministic
/// work counters (surfaced via [`OfflineOracle::work_counters`] and
/// merged into the perf-gate ledger by callers).
pub trait OfflineOracle {
    /// Stable oracle name (doubles as the registry key).
    fn name(&self) -> &'static str;

    /// Whether the oracle's certified envelope covers `instance`.
    /// Outside it, `lower_bound` degrades to a trivial bound and
    /// `opt_cost` returns `None`.
    fn supports(&self, instance: &RingInstance) -> bool {
        let _ = instance;
        true
    }

    /// A certified lower bound on the optimal offline cost for `trace`
    /// (see the module docs for the exact contract).
    fn lower_bound(&mut self, instance: &RingInstance, initial: &Placement, trace: &[Edge]) -> f64;

    /// The exact optimum, when this oracle can certify it.
    fn opt_cost(
        &mut self,
        instance: &RingInstance,
        initial: &Placement,
        trace: &[Edge],
    ) -> Option<f64>;

    /// The cost of an explicit feasible offline schedule — a certified
    /// upper bound on the optimum. Defaults to the exact optimum.
    fn upper_bound(
        &mut self,
        instance: &RingInstance,
        initial: &Placement,
        trace: &[Edge],
    ) -> Option<f64> {
        self.opt_cost(instance, initial, trace)
    }

    /// The deterministic work this oracle performed so far (the
    /// `oracle_*` metrics of [`WorkCounters`]); zero for the exact
    /// solvers, which are gated on wall-clock-irrelevant sizes.
    fn work_counters(&self) -> WorkCounters {
        WorkCounters::default()
    }
}

/// The exact brute-force dynamic optimum ([`dynamic_opt`]) as an
/// oracle. Certifies `OPT` exactly inside its envelope (`n ≤ 12`,
/// `ℓ ≤ 5`) and degrades to the trivial lower bound `0` outside it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactDynamicOracle;

impl OfflineOracle for ExactDynamicOracle {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn supports(&self, instance: &RingInstance) -> bool {
        instance.n() <= 12 && instance.servers() <= 5
    }

    fn lower_bound(&mut self, instance: &RingInstance, initial: &Placement, trace: &[Edge]) -> f64 {
        if self.supports(instance) {
            dynamic_opt(instance, initial, trace) as f64
        } else {
            0.0
        }
    }

    fn opt_cost(
        &mut self,
        instance: &RingInstance,
        initial: &Placement,
        trace: &[Edge],
    ) -> Option<f64> {
        self.supports(instance)
            .then(|| dynamic_opt(instance, initial, trace) as f64)
    }
}

/// The interval-based optimum `OPT_R` of Lemma 3.3 as an oracle.
///
/// `OPT_R` is the comparator the F3 sweep plots against: exact per
/// interval, but a lower bound on the true dynamic optimum only up to
/// the constant of Lemma 3.3 — which is why ratios against it are
/// labelled `cost/OPT_R`, never competitive ratios. `opt_cost` is
/// therefore always `None`.
#[derive(Debug, Clone, Copy)]
pub struct IntervalOracle {
    /// Augmentation slack ε the interval geometry is derived for.
    pub epsilon: f64,
    /// Interval shift `R ∈ {0,…,k′−1}` (the algorithm under test draws
    /// it randomly; pass the same value to compare like with like).
    pub shift: u32,
}

impl Default for IntervalOracle {
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            shift: 0,
        }
    }
}

impl OfflineOracle for IntervalOracle {
    fn name(&self) -> &'static str {
        "interval"
    }

    fn lower_bound(
        &mut self,
        instance: &RingInstance,
        _initial: &Placement,
        trace: &[Edge],
    ) -> f64 {
        let layout = IntervalLayout::new(instance, self.epsilon, self.shift);
        interval_opt(&layout, trace).total
    }

    fn opt_cost(
        &mut self,
        _instance: &RingInstance,
        _initial: &Placement,
        _trace: &[Edge],
    ) -> Option<f64> {
        None
    }
}

/// One oracle evaluation against an observed run, ready for reporting.
///
/// Deliberately *not* part of [`rdbp_model::RunReport`]: the run report
/// derives `Eq` and is pinned byte-for-byte by the snapshot/wire tests,
/// while oracle bounds are `f64`s computed after the run. The sim
/// binary composes the two side by side instead
/// (`{"report": …, "oracle": …}`).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// Name of the oracle that produced the bounds.
    pub oracle: String,
    /// The observed online cost (communication + migrations).
    pub cost: u64,
    /// The oracle's certified lower bound.
    pub lower_bound: f64,
    /// The oracle's certified upper bound on the optimum, if it
    /// produced one.
    pub upper_bound: Option<f64>,
    /// `cost / max(lower_bound, 1)` — an upper bound on the true
    /// competitive ratio of this run.
    pub ratio: f64,
}

impl OracleReport {
    /// Builds a report, deriving the ratio with the `max(·, 1)` guard
    /// (a zero lower bound must not divide).
    #[must_use]
    pub fn new(
        oracle: impl Into<String>,
        cost: u64,
        lower_bound: f64,
        upper_bound: Option<f64>,
    ) -> Self {
        Self {
            oracle: oracle.into(),
            cost,
            lower_bound,
            upper_bound,
            ratio: cost as f64 / lower_bound.max(1.0),
        }
    }
}

impl Serialize for OracleReport {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("oracle".into(), self.oracle.to_value()),
            ("cost".into(), self.cost.to_value()),
            ("lower_bound".into(), self.lower_bound.to_value()),
            (
                "upper_bound".into(),
                match self.upper_bound {
                    Some(u) => u.to_value(),
                    None => Value::Null,
                },
            ),
            ("ratio".into(), self.ratio.to_value()),
        ])
    }
}

impl Deserialize for OracleReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let upper_bound = match v.get_field("upper_bound")? {
            Value::Null => None,
            other => Some(f64::from_value(other)?),
        };
        Ok(Self {
            oracle: String::from_value(v.get_field("oracle")?)?,
            cost: u64::from_value(v.get_field("cost")?)?,
            lower_bound: f64::from_value(v.get_field("lower_bound")?)?,
            upper_bound,
            ratio: f64::from_value(v.get_field("ratio")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(instance: &RingInstance) -> Vec<Edge> {
        (0..40u64).map(|i| instance.edge(i * 3 + 1)).collect()
    }

    #[test]
    fn exact_oracle_is_its_own_sandwich() {
        let inst = RingInstance::packed(2, 4);
        let initial = Placement::contiguous(&inst);
        let trace = tiny_trace(&inst);
        let mut oracle = ExactDynamicOracle;
        assert!(oracle.supports(&inst));
        let lb = oracle.lower_bound(&inst, &initial, &trace);
        let opt = oracle.opt_cost(&inst, &initial, &trace).unwrap();
        let ub = oracle.upper_bound(&inst, &initial, &trace).unwrap();
        assert_eq!(lb, opt);
        assert_eq!(ub, opt);
        assert_eq!(opt, dynamic_opt(&inst, &initial, &trace) as f64);
    }

    #[test]
    fn exact_oracle_degrades_gracefully_outside_its_envelope() {
        let inst = RingInstance::packed(8, 32);
        let initial = Placement::contiguous(&inst);
        let trace = tiny_trace(&inst);
        let mut oracle = ExactDynamicOracle;
        assert!(!oracle.supports(&inst));
        assert_eq!(oracle.lower_bound(&inst, &initial, &trace), 0.0);
        assert_eq!(oracle.opt_cost(&inst, &initial, &trace), None);
    }

    #[test]
    fn interval_oracle_matches_the_f3_comparator() {
        let inst = RingInstance::packed(4, 8);
        let initial = Placement::contiguous(&inst);
        let trace = tiny_trace(&inst);
        let mut oracle = IntervalOracle {
            epsilon: 0.5,
            shift: 3,
        };
        let layout = IntervalLayout::new(&inst, 0.5, 3);
        let direct = interval_opt(&layout, &trace).total;
        assert_eq!(oracle.lower_bound(&inst, &initial, &trace), direct);
        assert_eq!(oracle.opt_cost(&inst, &initial, &trace), None);
        assert_eq!(oracle.upper_bound(&inst, &initial, &trace), None);
    }

    #[test]
    fn oracle_report_guards_the_ratio_and_round_trips() {
        let r = OracleReport::new("ringload", 120, 40.0, Some(90.0));
        assert_eq!(r.ratio, 3.0);
        let zero = OracleReport::new("ringload", 7, 0.0, None);
        assert_eq!(zero.ratio, 7.0, "max(lb,1) guard");
        for report in [&r, &zero] {
            let back = OracleReport::from_value(&report.to_value()).unwrap();
            assert_eq!(&back, report);
        }
    }
}
