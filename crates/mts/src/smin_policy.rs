//! The smin-gradient randomized policy (the paper's Appendix-A engine).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rdbp_smin::{grad_smin_scaled, grad_smin_scaled_into, Distribution, QuantileCoupling};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::policy::{
    coupling_from_value, coupling_to_value, validate_costs, MtsPolicy, PolicyCounters,
};

/// Randomized policy that maintains the distribution
/// `p⁽ᵗ⁾ = ∇smin_c(x⁽ᵗ⁾)` over cumulative state costs `x⁽ᵗ⁾` and plays
/// the quantile-coupled state.
///
/// This is exactly the machinery the paper's hitting game (Section 4.1)
/// runs inside one interval: the scale `c = N−1` (clamped to ≥ 1) makes
/// the distribution drift slowly enough that movement cost stays
/// comparable to hitting cost (Lemma A.3(iv): the L1 drift is at most
/// `(2/c)·pᵀℓ`). It is competitive against a **static** optimum with an
/// additive `c·ln N`; it is *not* competitive against a moving optimum
/// on its own — interval growing (static model) or phase resets /
/// work-function (dynamic model) supply that.
#[derive(Debug)]
pub struct SminGradient {
    x: Vec<f64>,
    scale: f64,
    coupling: QuantileCoupling,
    rng: StdRng,
    /// Scratch: normalized gradient probabilities for the hit fast
    /// path (never part of a snapshot).
    probs: Vec<f64>,
    /// Work counters: serves by task shape (transient, never
    /// snapshotted).
    serves: u64,
    hits: u64,
}

impl SminGradient {
    /// Creates the policy over `num_states` line states.
    ///
    /// `initial` seeds the coupling's starting state by conditioning:
    /// the initial cumulative cost vector is zero, so the initial
    /// distribution is uniform; we override the realized state to
    /// `initial` (cost-free, matching the hitting game's "start at the
    /// center edge" convention).
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn new(num_states: usize, initial: usize, seed: u64) -> Self {
        assert!(num_states > 0, "need at least one state");
        assert!(initial < num_states, "initial state out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Distribution::uniform(num_states);
        // Draw u uniformly inside `initial`'s quantile block of the
        // uniform start distribution: the realized initial state is
        // `initial` by construction, and u stays random *within* the
        // block. Pinning u deterministically (e.g. at the block center)
        // would be a trap: hammering the initial state drains mass
        // symmetrically around that quantile and the realized state
        // would never escape.
        let jitter: f64 = rng.random::<f64>().max(1e-9);
        let u = ((initial as f64 + jitter) / num_states as f64).clamp(1e-12, 1.0 - 1e-12);
        let coupling = QuantileCoupling::with_u(&dist, u);
        debug_assert_eq!(coupling.state(), initial);
        Self {
            x: vec![0.0; num_states],
            scale: ((num_states - 1).max(1)) as f64,
            coupling,
            rng,
            probs: vec![0.0; num_states],
            serves: 0,
            hits: 0,
        }
    }

    /// Current distribution `∇smin_c(x)` (exposed for tests/ablations).
    #[must_use]
    pub fn distribution(&self) -> Distribution {
        Distribution::new(grad_smin_scaled(&self.x, self.scale))
    }

    /// Cumulative cost vector.
    #[must_use]
    pub fn cumulative(&self) -> &[f64] {
        &self.x
    }

    /// Redraws the coupling's randomness from the internal RNG (used by
    /// the hitting game when an interval grows and the state set
    /// changes).
    pub fn resample(&mut self) -> u64 {
        let dist = self.distribution();
        self.coupling.resample(&dist, &mut self.rng)
    }
}

impl MtsPolicy for SminGradient {
    fn num_states(&self) -> usize {
        self.x.len()
    }

    fn state(&self) -> usize {
        self.coupling.state()
    }

    fn serve(&mut self, costs: &[f64]) -> usize {
        validate_costs(costs, self.x.len());
        self.serves += 1;
        crate::vecops::add_assign(&mut self.x, costs);
        let dist = self.distribution();
        self.coupling.follow(&dist);
        self.coupling.state()
    }

    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(index < self.x.len(), "hit index {index} out of range");
        self.hits += 1;
        self.x[index] += 1.0;
        // Allocation-free equivalent of `Distribution::new(grad)` +
        // `follow`: gradient into the scratch, then the same final
        // normalization `Distribution::new` applies, then the raw-slice
        // quantile follow. Bit-identical to the cost-vector path.
        let mut probs = std::mem::take(&mut self.probs);
        grad_smin_scaled_into(&self.x, self.scale, &mut probs);
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        self.coupling.follow_probs(&probs);
        self.probs = probs;
        self.coupling.state()
    }

    fn name(&self) -> &'static str {
        "smin-gradient"
    }

    fn export_state(&self) -> Option<Value> {
        Some(Value::Obj(vec![
            ("x".into(), self.x.to_value()),
            ("coupling".into(), coupling_to_value(&self.coupling)),
            ("rng".into(), self.rng.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let x = <Vec<f64> as Deserialize>::from_value(state.get_field("x")?)?;
        if x.len() != self.x.len() {
            return Err(DeError(format!(
                "cumulative cost arity {} != {}",
                x.len(),
                self.x.len()
            )));
        }
        self.coupling = coupling_from_value(state.get_field("coupling")?, self.x.len())?;
        self.rng = StdRng::from_value(state.get_field("rng")?)?;
        self.x = x;
        Ok(())
    }

    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters {
            serve_vector: self.serves,
            serve_hit: self.hits,
            coupling_follows: self.coupling.follows(),
            ..PolicyCounters::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn starts_at_requested_state() {
        for init in 0..7 {
            let p = SminGradient::new(7, init, 1);
            assert_eq!(p.state(), init);
        }
    }

    #[test]
    fn mass_drains_from_hammered_state() {
        let n = 9;
        let mut p = SminGradient::new(n, 4, 3);
        let before = p.distribution().prob(4);
        for _ in 0..200 {
            p.serve(&unit(n, 4));
        }
        let after = p.distribution().prob(4);
        assert!(
            after < before / 4.0,
            "mass should drain: {before} -> {after}"
        );
    }

    #[test]
    fn distribution_updates_are_slow_lemma_a3_iv() {
        // One unit of cost changes the distribution by at most
        // (2/c)·p(e) in L1.
        let n = 17;
        let mut p = SminGradient::new(n, 8, 5);
        for step in 0..50 {
            let e = (step * 7) % n;
            let before = p.distribution();
            let pe = before.prob(e);
            p.serve(&unit(n, e));
            let after = p.distribution();
            let drift = before.l1_distance(&after);
            let bound = 2.0 / (n as f64 - 1.0) * pe;
            assert!(
                drift <= bound + 1e-9,
                "step {step}: drift {drift} > bound {bound}"
            );
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let n = 11;
        let run = |seed: u64| {
            let mut p = SminGradient::new(n, 5, seed);
            (0..100)
                .map(|t| p.serve(&unit(n, (t * 3) % n)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn cost_against_static_adversary_is_logarithmic() {
        // Hammer a single state forever: the policy's total cost should
        // be O(c·ln N) ≪ T, because mass escapes the hammered state.
        let n = 33;
        let mut p = SminGradient::new(n, 16, 7);
        let steps = 40 * n;
        let mut total = 0.0;
        for _ in 0..steps {
            let prev = p.state();
            let task = unit(n, 16);
            let next = p.serve(&task);
            total += task[next] + prev.abs_diff(next) as f64;
        }
        let budget = 6.0 * (n as f64) * (n as f64).ln();
        assert!(
            total < budget,
            "smin policy paid {total}, budget {budget} over {steps} steps"
        );
    }

    #[test]
    fn resample_keeps_state_in_range() {
        let n = 15;
        let mut p = SminGradient::new(n, 7, 11);
        for t in 0..30 {
            p.serve(&unit(n, (t * 5) % n));
            p.resample();
            assert!(p.state() < n);
        }
    }
}
