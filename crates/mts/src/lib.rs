//! Metrical task systems (MTS) on the line: online policies and exact
//! offline optima.
//!
//! Section 3 of the paper reduces dynamic balanced ring partitioning to
//! independent MTS instances on line metrics (one per interval, states =
//! the interval's edges, unit cost on the requested edge). Theorem 2.1
//! only needs *some* α(k)-competitive MTS black box; this crate provides
//! three interchangeable ones plus the exact offline optimum:
//!
//! * [`WorkFunction`] — the deterministic work-function algorithm of
//!   Borodin, Linial & Saks \[21\], (2N−1)-competitive on any metric,
//!   here specialized to the line with O(N)-per-task sweeps.
//! * [`SminGradient`] — the paper's own Appendix-A machinery as a
//!   policy: play state `F⁻¹_p(u)` for `p = ∇smin_c(x)` over cumulative
//!   costs `x`, with inverse-CDF coupling (competitive against a
//!   *static* optimum; it is the engine of the Section 4.1 hitting
//!   game).
//! * [`HstHedge`] — a randomized hierarchical multiplicative-weights
//!   policy over a flat arena hierarchy (branching ≤ 4) with per-family
//!   phase resets; the documented substitution for the
//!   Bubeck–Cohen–Lee–Lee O(log²N) MTS algorithm \[25\] (see DESIGN.md
//!   §§1, 14).
//! * [`Marking`] — the classic randomized marking/phase policy for the
//!   *uniform* metric, used for comparisons and inside tests.
//! * [`offline`] — exact dynamic-programming optimum for line MTS
//!   (O(N) per task), with optional trajectory reconstruction; this is
//!   the `OPT_MTS(I)` of Lemma 3.3.
//!
//! All randomized policies draw from seeded RNGs and realize concrete
//! states through [`rdbp_smin::QuantileCoupling`], so expected movement
//! equals the Wasserstein drift of their distributions.

mod hst;
mod marking;
pub mod offline;
mod policy;
mod smin_policy;
mod vecops;
mod workfn;

pub use hst::HstHedge;
pub use marking::Marking;
pub use policy::{run_policy, MtsCosts, MtsPolicy, PolicyCounters, PolicyKind};
pub use smin_policy::SminGradient;
pub use workfn::WorkFunction;
