//! Hierarchical multiplicative weights with phase resets, on a flat
//! arena.
//!
//! This is the documented substitution (DESIGN.md §1) for the
//! Bubeck–Cohen–Lee–Lee mirror-descent MTS algorithm \[25\] that the
//! paper invokes as a black box: a randomized policy over a hierarchy
//! of the line whose structure mirrors the classical HST-recursion
//! approach to MTS (Bartal–Blum–Burch–Tomkins \[22\], Fiat–Mendel
//! \[23\]).
//!
//! Structure: a balanced tree over the `N` line states with branching
//! factor up to [`MAX_ARITY`] (near-equal splits). Every internal node
//! — a *family* — runs Hedge (multiplicative weights) over its
//! children with learning rate `1/Δ`, where `Δ` is the family's span
//! (its subtree diameter in the line metric). The leaf distribution is
//! the product of conditional child probabilities along root→leaf
//! paths. Each family tracks the cumulative cost charged to each child
//! during the current *phase*; when every child has accumulated ≥ Δ
//! the family resets its weights (phase end). Phases are what make the
//! policy adaptive to a moving optimum: within a phase the family
//! behaves like a static-expert Hedge, and a phase only ends once
//! *any* strategy confined to the subtree has paid Ω(Δ) — the standard
//! amortization that converts static competitiveness into dynamic
//! competitiveness.
//!
//! ## Data-oriented layout (DESIGN.md §14)
//!
//! The hierarchy lives in a **flat arena** in BFS order: parallel
//! `Vec<u32>` topology tables (`lo`/`hi`/`parent`/`child_start`/
//! `child_count`) built once at construction, and parallel `Vec<f64>`
//! live state (`log_w`/`phase_cost`) plus the write-through
//! conditional-probability cache `cond`, all indexed by arena node.
//! BFS order gives two invariants the serve paths lean on: a node's
//! children occupy the contiguous index range
//! `child_start..child_start + child_count` (a family's Hedge lanes
//! are adjacent in memory, so the softmax runs over one small slice),
//! and parents precede children (forward iteration is top-down,
//! reverse iteration is bottom-up — no recursion, no pointer chasing).
//!
//! Per-family lane costs are the *conditional* expected costs
//! `E[cost | child subtree]`, computed bottom-up as
//! `val(c) = Σ_d cond(d)·val(d)` — no global leaf distribution and no
//! mass division needed. A one-hot task zeroes `val` everywhere off
//! the hit leaf's root→leaf path, so [`HstHedge::serve_hit`] is a
//! branch-light leaf→root walk over `O(levels)` families that is
//! bit-identical to the full vector pass (IEEE: `x + 0.0 = x` and
//! `x - 1/Δ·0.0 = x` for the never-negative-zero accumulators used
//! here). The realized state follows the leaf distribution through an
//! inverse-CDF coupling *descended through the tree* (one quantile
//! step per family, mirroring [`Distribution::quantile_of`] lane by
//! lane), so a serve never materializes the `O(N)` leaf distribution;
//! expected realized movement still equals the distribution's
//! Wasserstein drift.
//!
//! The explicit leaf distribution survives only as a
//! generation-stamped cache for [`HstHedge::leaf_distribution`]
//! (tests, ablations): `gen` advances whenever any weight changes and
//! the cached array is recomputed only when its stamp is stale.

use std::cell::{Cell, RefCell};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rdbp_smin::{Distribution, QuantileCoupling};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::policy::{
    coupling_from_value, coupling_to_value, validate_costs, MtsPolicy, PolicyCounters,
};

/// Maximum children per family (the near-equal split uses
/// `min(MAX_ARITY, width)` lanes). Four keeps the tree shallow — for
/// the pinned `k′ = 48` interval size the root→leaf path crosses 3
/// families instead of the binary tree's 6 — while a family's lane
/// slice still fits one cache line.
const MAX_ARITY: usize = 4;

/// `parent` sentinel for the root.
const NO_PARENT: u32 = u32::MAX;

/// Randomized hierarchical-Hedge MTS policy on the line (see module
/// docs).
#[derive(Debug)]
pub struct HstHedge {
    // --- immutable arena topology (BFS order; built once) ---
    /// Subtree state range `[lo, hi)` per node.
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// Parent arena index ([`NO_PARENT`] for the root).
    parent: Vec<u32>,
    /// First child's arena index (children are contiguous).
    child_start: Vec<u32>,
    /// Number of children (0 = leaf).
    child_count: Vec<u32>,
    /// `leaf_of_state[s]` = arena index of the width-1 node for state
    /// `s` — the entry point of the `serve_hit` leaf→root walk.
    leaf_of_state: Vec<u32>,
    /// Tree depth in levels (a root-only tree has 1).
    levels: u32,
    num_states: usize,
    // --- live state (parallel arrays, indexed by arena node; an
    // entry is the node's Hedge lane within its parent family — the
    // root entries are unused and stay 0.0) ---
    /// Log-domain Hedge weights.
    log_w: Vec<f64>,
    /// Per-phase accumulated expected cost.
    phase_cost: Vec<f64>,
    // --- caches ---
    /// Write-through conditional-probability cache:
    /// `cond[i] = P(node i | parent(i))`, the softmax of the parent
    /// family's lane weights (`cond[root] = 1.0`). Updated in place
    /// whenever a family's weights change, so a serve never rebuilds
    /// probabilities for untouched families.
    cond: Vec<f64>,
    /// Weight generation: advances whenever any `log_w` changes.
    gen: u64,
    /// Generation-stamped leaf-distribution cache (lazy; only
    /// [`HstHedge::leaf_distribution`] reads it, so it lives behind
    /// interior mutability and never touches the serve paths).
    probs: RefCell<Vec<f64>>,
    /// The `gen` the cached `probs` were computed at.
    probs_gen: Cell<u64>,
    /// Scratch: bottom-up conditional expected costs (aligned with the
    /// arena; vector-serve path only).
    val: Vec<f64>,
    coupling: QuantileCoupling,
    rng: StdRng,
    /// Work counters (transient, never snapshotted): serves by task
    /// shape, families whose weights were actually updated, and serves
    /// that reused the write-through conditional-probability cache.
    serves: u64,
    hits: u64,
    node_visits: u64,
    cache_hits: u64,
}

impl HstHedge {
    /// Creates the policy over `num_states` line states starting at
    /// `initial`.
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn new(num_states: usize, initial: usize, seed: u64) -> Self {
        assert!(num_states > 0, "need at least one state");
        assert!(initial < num_states, "initial state out of range");
        let arena = build_arena(num_states);
        let n_nodes = arena.lo.len();
        let mut cond = vec![0.0; n_nodes];
        cond[0] = 1.0;
        let log_w = vec![0.0; n_nodes];
        for i in 0..n_nodes {
            let cc = arena.child_count[i] as usize;
            if cc > 0 {
                refresh_family_cond(&log_w, &mut cond, arena.child_start[i] as usize, cc);
            }
        }
        let mut policy = Self {
            lo: arena.lo,
            hi: arena.hi,
            parent: arena.parent,
            child_start: arena.child_start,
            child_count: arena.child_count,
            leaf_of_state: arena.leaf_of_state,
            levels: arena.levels,
            num_states,
            log_w,
            phase_cost: vec![0.0; n_nodes],
            cond,
            gen: 1,
            probs: RefCell::new(vec![0.0; num_states]),
            probs_gen: Cell::new(0),
            val: vec![0.0; n_nodes],
            // Placeholder; replaced right below once the distribution
            // exists.
            coupling: QuantileCoupling::with_u(&Distribution::uniform(num_states.max(1)), 0.5),
            rng: StdRng::seed_from_u64(seed),
            serves: 0,
            hits: 0,
            node_visits: 0,
            cache_hits: 0,
        };
        let dist = policy.leaf_distribution();
        // Draw u uniformly inside initial's quantile block, so the
        // realized initial state is `initial` while u stays random
        // within the block (see the same note in `SminGradient::new`).
        let mut cdf = 0.0;
        for i in 0..initial {
            cdf += dist.prob(i);
        }
        let jitter: f64 = policy.rng.random::<f64>().max(1e-9);
        let u = (cdf + jitter * dist.prob(initial)).clamp(1e-12, 1.0 - 1e-12);
        policy.coupling = QuantileCoupling::with_u(&dist, u);
        debug_assert_eq!(policy.coupling.state(), initial);
        policy
    }

    /// The current leaf distribution (product of conditional Hedge
    /// probabilities along root→leaf paths), served from the
    /// generation-stamped cache when the weights have not changed since
    /// the last call.
    #[must_use]
    pub fn leaf_distribution(&self) -> Distribution {
        if self.num_states == 1 {
            return Distribution::point(0, 1);
        }
        if self.probs_gen.get() != self.gen {
            self.compute_leaf_probs(&mut self.probs.borrow_mut());
            self.probs_gen.set(self.gen);
        }
        Distribution::new(self.probs.borrow().clone())
    }

    /// Total bytes of the arena's parallel arrays (topology tables,
    /// live state, caches, scratch) — the debug accessor behind the
    /// data-oriented layout work; see DESIGN.md §14.
    #[must_use]
    pub fn hst_arena_bytes(&self) -> usize {
        use std::mem::size_of;
        let u32s = self.lo.len()
            + self.hi.len()
            + self.parent.len()
            + self.child_start.len()
            + self.child_count.len()
            + self.leaf_of_state.len();
        let f64s = self.log_w.len() + self.phase_cost.len() + self.cond.len() + self.val.len() + {
            self.probs.borrow().len()
        };
        u32s * size_of::<u32>() + f64s * size_of::<f64>()
    }

    /// Number of levels in the hierarchy (1 for a single state). The
    /// `serve_hit` walk touches at most `hst_levels() - 1` families.
    #[must_use]
    pub fn hst_levels(&self) -> u32 {
        self.levels
    }

    /// Debug accessor: the state ranges `[lo, hi)` of the families a
    /// `serve_hit(state)` walk updates, in walk (leaf→root) order,
    /// ignoring the zero-cost early break. The differential proptests
    /// compare this against an independently built reference pointer
    /// tree, node for node and in order.
    ///
    /// # Panics
    /// Panics if `state >= num_states`.
    #[must_use]
    pub fn hit_path(&self, state: usize) -> Vec<(u32, u32)> {
        assert!(state < self.num_states, "state out of range");
        let mut path = Vec::with_capacity(self.levels as usize);
        let mut node = self.leaf_of_state[state] as usize;
        while self.parent[node] != NO_PARENT {
            let family = self.parent[node] as usize;
            path.push((self.lo[family], self.hi[family]));
            node = family;
        }
        path
    }

    /// Writes the normalized leaf distribution into `out` (top-down
    /// product of conditionals, normalized exactly as
    /// [`Distribution::new`] would).
    fn compute_leaf_probs(&self, out: &mut [f64]) {
        let n_nodes = self.lo.len();
        let mut node_prob = vec![0.0f64; n_nodes];
        for i in 0..n_nodes {
            let p = if self.parent[i] == NO_PARENT {
                1.0
            } else {
                node_prob[self.parent[i] as usize] * self.cond[i]
            };
            node_prob[i] = p;
            if self.child_count[i] == 0 {
                out[self.lo[i] as usize] = p;
            }
        }
        let sum: f64 = out.iter().sum();
        for q in out.iter_mut() {
            *q /= sum;
        }
    }

    /// Charges the per-lane costs to `family` — the single shared
    /// update both serve paths funnel through: Hedge weight step with
    /// `η = 1/Δ`, phase accounting, phase reset once every lane has
    /// suffered ≥ Δ, and the write-through refresh of the family's
    /// slice of the conditional-probability cache.
    ///
    /// Callers have already established that some lane cost is nonzero
    /// (zero-cost lanes are IEEE no-ops on the accumulators, so a
    /// family with all-zero costs is skipped without touching the
    /// cache).
    fn update_family(&mut self, family: usize, lane_costs: &[f64]) {
        let cs = self.child_start[family] as usize;
        let cc = self.child_count[family] as usize;
        debug_assert_eq!(lane_costs.len(), cc);
        let span = f64::from(self.hi[family] - self.lo[family]);
        let eta = 1.0 / span;
        for (lane, &cost) in (cs..cs + cc).zip(lane_costs) {
            self.log_w[lane] -= eta * cost;
            self.phase_cost[lane] += cost;
        }
        // Phase end: every child has suffered ≥ span — any strategy
        // inside this subtree paid Ω(span); forgive the past.
        if self.phase_cost[cs..cs + cc].iter().all(|&p| p >= span) {
            self.log_w[cs..cs + cc].fill(0.0);
            self.phase_cost[cs..cs + cc].fill(0.0);
        }
        refresh_family_cond(&self.log_w, &mut self.cond, cs, cc);
    }

    /// The cost-vector serve body: one bottom-up sweep computing the
    /// conditional expected cost of every subtree, then an independent
    /// Hedge update per family that carries cost. Reverse BFS order is
    /// a valid bottom-up order (parents precede children), and all
    /// `val` reads use the pre-update `cond` — the property the
    /// `serve_hit` walk's old-cond read reproduces.
    fn serve_vector_body(&mut self, costs: &[f64]) -> usize {
        self.cache_hits += 1;
        let mut val = std::mem::take(&mut self.val);
        let n_nodes = self.lo.len();
        for i in (0..n_nodes).rev() {
            let cc = self.child_count[i] as usize;
            val[i] = if cc == 0 {
                costs[self.lo[i] as usize]
            } else {
                let cs = self.child_start[i] as usize;
                (cs..cs + cc).map(|c| self.cond[c] * val[c]).sum()
            };
        }
        let mut touched = false;
        for i in (0..n_nodes).rev() {
            let cc = self.child_count[i] as usize;
            if cc == 0 {
                continue;
            }
            let cs = self.child_start[i] as usize;
            if val[cs..cs + cc].iter().all(|&c| c == 0.0) {
                continue;
            }
            self.node_visits += 1;
            touched = true;
            let mut lanes = [0.0f64; MAX_ARITY];
            lanes[..cc].copy_from_slice(&val[cs..cs + cc]);
            self.update_family(i, &lanes[..cc]);
        }
        if touched {
            self.gen = self.gen.wrapping_add(1);
        }
        self.val = val;
        self.descend_and_follow()
    }

    /// The one-hot serve body: a leaf→root walk over the hit's path.
    ///
    /// For a unit task every off-path subtree has conditional expected
    /// cost exactly `0.0` (sums of products of zeros), so the vector
    /// pass above degenerates to: path families see one nonzero lane
    /// carrying `val`, everything else is skipped. `val` propagates as
    /// `cond(child)·val` read **before** the family update — the
    /// vector pass computes every `val` from the pre-update cache —
    /// and once it underflows to `0.0` all remaining ancestors would
    /// see all-zero lanes, so the walk stops. `O(levels)` work, bit
    /// for bit the trajectory of the `O(N)` pass (pinned by
    /// `serve_hit_equals_one_hot_serve_for_every_policy` and the
    /// arena-walk proptests).
    fn serve_hit_body(&mut self, index: usize) -> usize {
        self.cache_hits += 1;
        let mut node = self.leaf_of_state[index] as usize;
        let mut val = 1.0f64;
        let mut touched = false;
        while self.parent[node] != NO_PARENT && val != 0.0 {
            let family = self.parent[node] as usize;
            let next_val = self.cond[node] * val;
            let cs = self.child_start[family] as usize;
            let cc = self.child_count[family] as usize;
            let mut lanes = [0.0f64; MAX_ARITY];
            lanes[node - cs] = val;
            self.node_visits += 1;
            touched = true;
            self.update_family(family, &lanes[..cc]);
            val = next_val;
            node = family;
        }
        if touched {
            self.gen = self.gen.wrapping_add(1);
        }
        self.descend_and_follow()
    }

    /// Realizes the coupling's state by descending the hierarchy: one
    /// inverse-CDF step per family over its (contiguous) lane slice of
    /// the conditional cache, rescaling the residual quantile into the
    /// chosen child's block. Each step mirrors
    /// [`Distribution::quantile_of`] exactly — positive-probability
    /// lanes only, with the same last-positive fallback when the lane
    /// CDF falls short of `u` by floating-point shortfall — so the
    /// walk is monotone in `u` and the coupling remains an optimal
    /// transport along the leaf order.
    fn descend_and_follow(&mut self) -> usize {
        let mut u = self.coupling.u();
        let mut node = 0usize;
        while self.child_count[node] != 0 {
            let cs = self.child_start[node] as usize;
            let cc = self.child_count[node] as usize;
            let mut cdf = 0.0f64;
            let mut last_positive = cs;
            let mut chosen = usize::MAX;
            for c in cs..cs + cc {
                let p = self.cond[c];
                if p > 0.0 {
                    last_positive = c;
                }
                cdf += p;
                if cdf >= u && p > 0.0 {
                    chosen = c;
                    u = ((u - (cdf - p)) / p).clamp(0.0, 1.0);
                    break;
                }
            }
            if chosen == usize::MAX {
                // The family's lane CDF fell short of u (softmax sums
                // to 1 only up to rounding): take the last positive
                // lane, pinned to its upper quantile edge — exactly
                // `quantile_of`'s fallback. The softmax guarantees at
                // least one positive lane (the max-weight lane).
                chosen = last_positive;
                u = 1.0;
            }
            node = chosen;
        }
        let state = self.lo[node] as usize;
        self.coupling.follow_to(state);
        state
    }
}

/// The arena topology tables, in BFS order.
struct Arena {
    lo: Vec<u32>,
    hi: Vec<u32>,
    parent: Vec<u32>,
    child_start: Vec<u32>,
    child_count: Vec<u32>,
    leaf_of_state: Vec<u32>,
    levels: u32,
}

/// Builds the hierarchy over `[0, n)` in BFS order: node 0 is the
/// root, every node's children are contiguous, and parents precede
/// children. Internal nodes split into `min(MAX_ARITY, width)`
/// near-equal parts (the first `width % arity` parts get the extra
/// state), so e.g. 48 states level out as 48 → 12 → 3 → 1 with a
/// uniform initial leaf distribution.
fn build_arena(n: usize) -> Arena {
    let n32 = u32::try_from(n).expect("state count fits u32");
    let mut lo = vec![0u32];
    let mut hi = vec![n32];
    let mut parent = vec![NO_PARENT];
    let mut depth = vec![0u32];
    let mut child_start = Vec::new();
    let mut child_count = Vec::new();
    let mut leaf_of_state = vec![0u32; n];
    let mut levels = 1;
    let mut i = 0;
    while i < lo.len() {
        let width = (hi[i] - lo[i]) as usize;
        if width >= 2 {
            let arity = width.min(MAX_ARITY);
            child_start.push(u32::try_from(lo.len()).expect("arena fits u32"));
            child_count.push(arity as u32);
            let base = width / arity;
            let rem = width % arity;
            let mut cursor = lo[i];
            for j in 0..arity {
                let size = (base + usize::from(j < rem)) as u32;
                lo.push(cursor);
                hi.push(cursor + size);
                parent.push(i as u32);
                depth.push(depth[i] + 1);
                levels = levels.max(depth[i] + 2);
                cursor += size;
            }
            debug_assert_eq!(cursor, hi[i], "children must tile the parent");
        } else {
            child_start.push(0);
            child_count.push(0);
            leaf_of_state[lo[i] as usize] = i as u32;
        }
        i += 1;
    }
    Arena {
        lo,
        hi,
        parent,
        child_start,
        child_count,
        leaf_of_state,
        levels,
    }
}

/// Recomputes one family's slice of the conditional-probability cache:
/// `cond[cs..cs+cc] = softmax(log_w[cs..cs+cc])`, max-shifted for
/// stability. The single softmax shared by construction, both serve
/// paths and snapshot restore — any two code paths that land on the
/// same weights produce bit-identical conditionals.
fn refresh_family_cond(log_w: &[f64], cond: &mut [f64], cs: usize, cc: usize) {
    debug_assert!(cc <= MAX_ARITY);
    let lanes = &log_w[cs..cs + cc];
    let mut top = f64::NEG_INFINITY;
    for &w in lanes {
        top = top.max(w);
    }
    let mut exp = [0.0f64; MAX_ARITY];
    let mut sum = 0.0;
    for (e, &w) in exp[..cc].iter_mut().zip(lanes) {
        *e = (w - top).exp();
        sum += *e;
    }
    for (c, &e) in cond[cs..cs + cc].iter_mut().zip(&exp[..cc]) {
        *c = e / sum;
    }
}

impl MtsPolicy for HstHedge {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn state(&self) -> usize {
        self.coupling.state()
    }

    fn serve(&mut self, costs: &[f64]) -> usize {
        validate_costs(costs, self.num_states);
        self.serves += 1;
        if self.num_states == 1 {
            return 0;
        }
        self.serve_vector_body(costs)
    }

    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(
            index < self.num_states,
            "hit index {index} out of range 0..{}",
            self.num_states
        );
        self.hits += 1;
        if self.num_states == 1 {
            return 0;
        }
        self.serve_hit_body(index)
    }

    fn name(&self) -> &'static str {
        "hst-hedge"
    }

    // The arena topology is construction-derived from `num_states`;
    // only the flat Hedge weights and phase accumulators are live
    // state, plus the coupling and RNG. `probs_fresh` rides along so a
    // restored policy performs exactly the work the uninterrupted one
    // would: whether `leaf_distribution` may reuse the cached array is
    // part of the state, and dropping it would make a live-migrated
    // session recompute (or skip recomputing) the distribution where
    // its unmigrated twin would not — the "one cache hit per restore"
    // drift the snapshot round-trip tests pin down.
    fn export_state(&self) -> Option<Value> {
        Some(Value::Obj(vec![
            ("log_w".into(), self.log_w.to_value()),
            ("phase_cost".into(), self.phase_cost.to_value()),
            ("coupling".into(), coupling_to_value(&self.coupling)),
            ("rng".into(), self.rng.to_value()),
            (
                "probs_fresh".into(),
                (self.probs_gen.get() == self.gen).to_value(),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let log_w = <Vec<f64> as Deserialize>::from_value(state.get_field("log_w")?)?;
        let phase = <Vec<f64> as Deserialize>::from_value(state.get_field("phase_cost")?)?;
        let n_nodes = self.lo.len();
        if log_w.len() != n_nodes || phase.len() != n_nodes {
            return Err(DeError(format!(
                "arena length mismatch: snapshot has {}/{} entries, arena has {n_nodes}",
                log_w.len(),
                phase.len(),
            )));
        }
        let coupling = coupling_from_value(state.get_field("coupling")?, self.num_states)?;
        let probs_fresh = bool::from_value(state.get_field("probs_fresh")?)?;
        self.rng = StdRng::from_value(state.get_field("rng")?)?;
        self.coupling = coupling;
        self.log_w = log_w;
        self.phase_cost = phase;
        // Rebuild the write-through conditional cache for the restored
        // weights (bit-identical: the same shared softmax the serve
        // paths use), then honor the snapshot's leaf-cache freshness.
        for i in 0..n_nodes {
            let cc = self.child_count[i] as usize;
            if cc > 0 {
                refresh_family_cond(
                    &self.log_w,
                    &mut self.cond,
                    self.child_start[i] as usize,
                    cc,
                );
            }
        }
        self.gen = 1;
        if probs_fresh {
            if self.num_states > 1 {
                self.compute_leaf_probs(&mut self.probs.borrow_mut());
            }
            self.probs_gen.set(self.gen);
        } else {
            self.probs_gen.set(0);
        }
        Ok(())
    }

    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters {
            serve_vector: self.serves,
            serve_hit: self.hits,
            node_visits: self.node_visits,
            cache_hits: self.cache_hits,
            coupling_follows: self.coupling.follows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn starts_at_requested_state() {
        for n in [1usize, 2, 3, 7, 16, 31] {
            for init in [0, n / 2, n - 1] {
                let p = HstHedge::new(n, init, 5);
                assert_eq!(p.state(), init, "n={n} init={init}");
            }
        }
    }

    #[test]
    fn initial_distribution_is_dyadic_uniformish() {
        // 8 states split 8 → 4 × 2 → 2 × 1: every leaf is the product
        // of one fair 4-way and one fair 2-way choice, so the initial
        // distribution is exactly uniform.
        let p = HstHedge::new(8, 0, 1);
        let d = p.leaf_distribution();
        for i in 0..8 {
            assert!((d.prob(i) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn arena_invariants_hold_across_sizes() {
        for n in [1usize, 2, 3, 5, 8, 13, 31, 48, 100] {
            let p = HstHedge::new(n, 0, 7);
            let nodes = p.lo.len();
            assert_eq!(p.lo[0], 0);
            assert_eq!(p.hi[0] as usize, n);
            assert_eq!(p.parent[0], NO_PARENT);
            for i in 0..nodes {
                assert!(p.lo[i] < p.hi[i], "n={n}: empty node {i}");
                let cc = p.child_count[i] as usize;
                if cc == 0 {
                    assert_eq!(p.hi[i] - p.lo[i], 1, "n={n}: wide leaf {i}");
                    continue;
                }
                // Children are contiguous, tile the parent, and come
                // after it (BFS).
                let cs = p.child_start[i] as usize;
                assert!(cs > i, "n={n}: child before parent");
                let mut cursor = p.lo[i];
                for c in cs..cs + cc {
                    assert_eq!(p.parent[c] as usize, i);
                    assert_eq!(p.lo[c], cursor);
                    cursor = p.hi[c];
                }
                assert_eq!(cursor, p.hi[i], "n={n}: children must tile node {i}");
            }
            for s in 0..n {
                let leaf = p.leaf_of_state[s] as usize;
                assert_eq!(p.lo[leaf] as usize, s);
                assert_eq!(p.child_count[leaf], 0);
            }
            assert!(p.hst_arena_bytes() > 0);
            assert!(p.hst_levels() >= 1);
        }
    }

    #[test]
    fn quaternary_tree_is_shallow() {
        // The data-oriented redesign's point: 48 states (the pinned
        // dynamic×hedge interval size) level out as 48 → 12 → 3 → 1,
        // so a hit walk crosses at most 3 families — half the binary
        // tree's 6.
        let p = HstHedge::new(48, 0, 1);
        assert_eq!(p.hst_levels(), 4);
        let mut q = HstHedge::new(48, 24, 1);
        let visits_before = q.node_visits;
        let _ = q.serve_hit(10);
        assert!(q.node_visits - visits_before <= 3);
    }

    #[test]
    fn mass_drains_from_hammered_state() {
        let n = 16;
        let mut p = HstHedge::new(n, 5, 2);
        let before = p.leaf_distribution().prob(5);
        for _ in 0..60 {
            p.serve(&unit(n, 5));
        }
        let after = p.leaf_distribution().prob(5);
        assert!(
            after < before / 2.0,
            "mass should drain: {before} -> {after}"
        );
    }

    #[test]
    fn phase_reset_forgives_history() {
        // Hammer left half until phases cycle, then hammer right half;
        // the policy should recover mass on the left.
        let n = 8;
        let mut p = HstHedge::new(n, 0, 3);
        let left_heavy: Vec<f64> = (0..n).map(|i| if i < 4 { 1.0 } else { 0.0 }).collect();
        let right_heavy: Vec<f64> = (0..n).map(|i| if i >= 4 { 1.0 } else { 0.0 }).collect();
        for _ in 0..200 {
            p.serve(&left_heavy);
        }
        let after_left: f64 = (0..4).map(|i| p.leaf_distribution().prob(i)).sum();
        for _ in 0..200 {
            p.serve(&right_heavy);
        }
        let recovered: f64 = (0..4).map(|i| p.leaf_distribution().prob(i)).sum();
        assert!(
            after_left < 0.2,
            "left mass should be tiny, got {after_left}"
        );
        assert!(recovered > 0.8, "left mass should recover, got {recovered}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let n = 12;
        let run = |seed: u64| {
            let mut p = HstHedge::new(n, 6, seed);
            (0..80)
                .map(|t| p.serve(&unit(n, (t * 5) % n)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn single_state_is_trivial() {
        let mut p = HstHedge::new(1, 0, 0);
        assert_eq!(p.serve(&[3.0]), 0);
        assert_eq!(p.num_states(), 1);
        assert_eq!(p.hst_levels(), 1);
    }

    #[test]
    fn leaf_distribution_cache_is_generation_stamped() {
        let n = 16;
        let mut p = HstHedge::new(n, 5, 2);
        let _ = p.leaf_distribution();
        let stamped = p.probs_gen.get();
        // Re-reading without serving reuses the cache (stamp stable).
        let _ = p.leaf_distribution();
        assert_eq!(p.probs_gen.get(), stamped);
        // A serve that charges cost advances the generation and the
        // next read recomputes under the new stamp.
        p.serve(&unit(n, 5));
        assert_ne!(p.gen, stamped);
        let _ = p.leaf_distribution();
        assert_eq!(p.probs_gen.get(), p.gen);
        // An all-zero task changes no weight: same generation, cache
        // still fresh.
        let gen = p.gen;
        p.serve(&vec![0.0; n]);
        assert_eq!(p.gen, gen);
    }

    #[test]
    fn oblivious_round_robin_tracks_offline_optimum() {
        // Oblivious adversary (adaptive chasers void randomized
        // guarantees): hammer states round-robin. OPT pays ≈ T/N by
        // sitting anywhere; the hedge should stay within a polylog
        // factor plus the usual additive diameter·log term.
        let n = 32;
        let mut p = HstHedge::new(n, 16, 9);
        let steps = 60 * n;
        let tasks: Vec<Vec<f64>> = (0..steps).map(|t| unit(n, t % n)).collect();
        let mut total = 0.0;
        for task in &tasks {
            let cur = p.state();
            let next = p.serve(task);
            total += task[next] + cur.abs_diff(next) as f64;
        }
        let opt = crate::offline::optimum(n, 16, &tasks);
        let logn = (n as f64).ln();
        let budget = 8.0 * logn * logn * opt + 4.0 * n as f64 * logn;
        assert!(
            total <= budget,
            "hedge paid {total}, opt {opt}, budget {budget}"
        );
    }
}
