//! Hierarchical multiplicative weights with phase resets.
//!
//! This is the documented substitution (DESIGN.md §1) for the
//! Bubeck–Cohen–Lee–Lee mirror-descent MTS algorithm \[25\] that the
//! paper invokes as a black box: a randomized policy over a dyadic
//! hierarchy of the line whose structure mirrors the classical
//! HST-recursion approach to MTS (Bartal–Blum–Burch–Tomkins \[22\],
//! Fiat–Mendel \[23\]).
//!
//! Structure: a balanced binary tree over the `N` line states. Every
//! internal node runs Hedge (multiplicative weights) over its two
//! children with learning rate `1/Δ`, where `Δ` is the node's span (its
//! subtree diameter in the line metric). The leaf distribution is the
//! product of conditional child probabilities along root→leaf paths.
//! Each node tracks the cumulative cost charged to each child during the
//! current *phase*; when both children have accumulated ≥ Δ the node
//! resets its weights (phase end). Phases are what make the policy
//! adaptive to a moving optimum: within a phase the node behaves like a
//! static-expert Hedge, and a phase only ends once *any* strategy
//! confined to the subtree has paid Ω(Δ) — the standard amortization
//! that converts static competitiveness into dynamic competitiveness.
//!
//! The realized state follows the leaf distribution through an
//! inverse-CDF coupling, so expected realized movement equals the
//! distribution's Wasserstein drift.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use rdbp_smin::{Distribution, QuantileCoupling};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::policy::{
    coupling_from_value, coupling_to_value, validate_costs, MtsPolicy, PolicyCounters,
};

/// One internal node of the dyadic hierarchy over `[lo, hi)`.
#[derive(Debug, Clone)]
struct Node {
    lo: usize,
    mid: usize,
    hi: usize,
    /// Log-domain Hedge weights for (left, right).
    log_w: [f64; 2],
    /// Per-phase accumulated expected cost charged to each child.
    phase_cost: [f64; 2],
    /// Children indices into the node arena (`usize::MAX` = leaf child).
    child: [usize; 2],
}

impl Node {
    fn span(&self) -> f64 {
        (self.hi - self.lo) as f64
    }
}

/// Randomized hierarchical-Hedge MTS policy on the line (see module
/// docs).
#[derive(Debug)]
pub struct HstHedge {
    nodes: Vec<Node>,
    root: usize,
    num_states: usize,
    coupling: QuantileCoupling,
    rng: StdRng,
    /// Cache: per-node conditional child probabilities
    /// `hedge_probs(log_w)`, updated write-through whenever a node's
    /// weights change. Serving a one-hot task only touches the O(log N)
    /// nodes on the hit's root→leaf path, so this turns the two
    /// exponentials per node per serve into two per *changed* node.
    cond: Vec<(f64, f64)>,
    /// Scratch: leaf probabilities.
    probs: Vec<f64>,
    /// Whether `probs` currently holds the leaf distribution for the
    /// current weights (set at the end of every serve; the next serve
    /// then skips its leading recompute).
    probs_fresh: bool,
    /// Scratch: per-subtree total probability mass (aligned with nodes).
    mass: Vec<f64>,
    /// Scratch: per-subtree expected cost under the conditional leaf
    /// distribution.
    exp_cost: Vec<f64>,
    /// Work counters (transient, never snapshotted): serves by task
    /// shape, nodes whose weights were actually updated, and serves
    /// that reused the cached leaf distribution.
    serves: u64,
    hits: u64,
    node_visits: u64,
    cache_hits: u64,
}

const NO_CHILD: usize = usize::MAX;

impl HstHedge {
    /// Creates the policy over `num_states` line states starting at
    /// `initial`.
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn new(num_states: usize, initial: usize, seed: u64) -> Self {
        assert!(num_states > 0, "need at least one state");
        assert!(initial < num_states, "initial state out of range");
        let mut nodes = Vec::new();
        let root = build(&mut nodes, 0, num_states);
        let rng = StdRng::seed_from_u64(seed);
        let n_nodes = nodes.len();
        let cond = nodes.iter().map(|n| hedge_probs(n.log_w)).collect();
        let mut policy = Self {
            nodes,
            root,
            num_states,
            // Placeholder; replaced right below once probs exist.
            coupling: QuantileCoupling::with_u(&Distribution::uniform(num_states.max(1)), 0.5),
            rng,
            cond,
            probs: vec![0.0; num_states],
            probs_fresh: false,
            mass: vec![0.0; n_nodes],
            exp_cost: vec![0.0; n_nodes],
            serves: 0,
            hits: 0,
            node_visits: 0,
            cache_hits: 0,
        };
        let dist = policy.leaf_distribution();
        // Draw u uniformly inside initial's quantile block, so the
        // realized initial state is `initial` while u stays random
        // within the block (see the same note in `SminGradient::new`).
        let mut cdf = 0.0;
        for i in 0..initial {
            cdf += dist.prob(i);
        }
        let jitter: f64 = policy.rng.random::<f64>().max(1e-9);
        let u = (cdf + jitter * dist.prob(initial)).clamp(1e-12, 1.0 - 1e-12);
        policy.coupling = QuantileCoupling::with_u(&dist, u);
        debug_assert_eq!(policy.coupling.state(), initial);
        policy
    }

    /// The current leaf distribution (product of conditional Hedge
    /// probabilities along root→leaf paths).
    #[must_use]
    pub fn leaf_distribution(&self) -> Distribution {
        if self.num_states == 1 {
            return Distribution::point(0, 1);
        }
        let mut probs = vec![0.0; self.num_states];
        self.fill_probs(self.root, 1.0, &mut probs);
        Distribution::new(probs)
    }

    fn fill_probs(&self, node: usize, p: f64, out: &mut [f64]) {
        if node == NO_CHILD {
            return;
        }
        let n = &self.nodes[node];
        if n.hi - n.lo == 1 {
            out[n.lo] += p;
            return;
        }
        let (pl, pr) = self.cond[node];
        for (side, q) in [(0usize, pl), (1usize, pr)] {
            let (lo, hi) = if side == 0 {
                (n.lo, n.mid)
            } else {
                (n.mid, n.hi)
            };
            if n.child[side] == NO_CHILD {
                // Single-state child.
                debug_assert_eq!(hi - lo, 1);
                out[lo] += p * q;
            } else {
                let _ = hi;
                self.fill_probs(n.child[side], p * q, out);
            }
        }
    }

    /// Writes the current leaf distribution into the `probs` scratch,
    /// normalized exactly as [`rdbp_smin::Distribution::new`] would —
    /// the allocation-free twin of [`HstHedge::leaf_distribution`].
    fn refresh_probs(&mut self) {
        let mut probs = std::mem::take(&mut self.probs);
        probs.fill(0.0);
        self.fill_probs(self.root, 1.0, &mut probs);
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        self.probs = probs;
    }

    /// The whole serve body, parameterized over the task shape:
    /// `leaf_cost(i)` is the task's cost on state `i`, `range_sum(lo,
    /// hi)` its total over `[lo, hi)`. `serve` instantiates it with the
    /// explicit cost vector, `serve_hit` with the implicit one-hot —
    /// same arithmetic, no vector.
    fn serve_with(
        &mut self,
        leaf_cost: impl Fn(usize) -> f64,
        range_sum: impl Fn(usize, usize) -> f64,
    ) -> usize {
        // Bottom-up pass: per-node subtree probability mass and
        // expected task cost under the current leaf distribution.
        // Children are always created before parents in `build`, so
        // forward arena order is a valid bottom-up order. The leading
        // recompute is skipped when the scratch still holds the
        // distribution from the previous serve's trailing refresh.
        if self.probs_fresh {
            self.cache_hits += 1;
        } else {
            self.refresh_probs();
        }
        for idx in 0..self.nodes.len() {
            self.mass[idx] = 0.0;
            self.exp_cost[idx] = 0.0;
        }
        for idx in 0..self.nodes.len() {
            let (lo, mid, hi, child) = {
                let n = &self.nodes[idx];
                (n.lo, n.mid, n.hi, n.child)
            };
            let mut mass = 0.0;
            let mut cost = 0.0;
            for (side, (clo, chi)) in [(0usize, (lo, mid)), (1usize, (mid, hi))] {
                if child[side] == NO_CHILD {
                    debug_assert_eq!(chi - clo, 1);
                    mass += self.probs[clo];
                    cost += self.probs[clo] * leaf_cost(clo);
                } else {
                    mass += self.mass[child[side]];
                    cost += self.exp_cost[child[side]];
                }
            }
            self.mass[idx] = mass;
            self.exp_cost[idx] = cost;
        }
        for idx in 0..self.nodes.len() {
            let span = self.nodes[idx].span();
            let eta = 1.0 / span;
            let c = [
                self.child_cost(idx, 0, &leaf_cost, &range_sum),
                self.child_cost(idx, 1, &leaf_cost, &range_sum),
            ];
            // A node whose subtree carries no task cost is a no-op
            // (subtracting 0 leaves the weights bit-identical, and the
            // phase condition was already false after the last serve) —
            // for a one-hot task that skips every node off the hit's
            // root→leaf path, keeping the conditional-probability cache
            // valid without recomputing it.
            if c[0] == 0.0 && c[1] == 0.0 {
                continue;
            }
            self.node_visits += 1;
            let n = &mut self.nodes[idx];
            for (side, &side_cost) in c.iter().enumerate() {
                n.log_w[side] -= eta * side_cost;
                n.phase_cost[side] += side_cost;
            }
            // Phase end: both children have suffered ≥ span — any
            // strategy inside this subtree paid Ω(span); forgive the
            // past.
            if n.phase_cost[0] >= span && n.phase_cost[1] >= span {
                n.log_w = [0.0, 0.0];
                n.phase_cost = [0.0, 0.0];
            }
            self.cond[idx] = hedge_probs(self.nodes[idx].log_w);
        }
        self.refresh_probs();
        self.probs_fresh = true;
        self.coupling.follow_probs(&self.probs);
        self.coupling.state()
    }

    /// Per-child expected cost, conditioned on being inside the child
    /// (falls back to the plain average when the child carries ≈ no
    /// mass).
    fn child_cost(
        &self,
        node: usize,
        side: usize,
        leaf_cost: &impl Fn(usize) -> f64,
        range_sum: &impl Fn(usize, usize) -> f64,
    ) -> f64 {
        let n = &self.nodes[node];
        let (lo, hi) = if side == 0 {
            (n.lo, n.mid)
        } else {
            (n.mid, n.hi)
        };
        let (mass, total) = if n.child[side] == NO_CHILD {
            (self.probs[lo], self.probs[lo] * leaf_cost(lo))
        } else {
            (self.mass[n.child[side]], self.exp_cost[n.child[side]])
        };
        if mass > 1e-12 {
            total / mass
        } else {
            range_sum(lo, hi) / (hi - lo) as f64
        }
    }
}

/// Builds the dyadic tree over `[lo, hi)`; returns the arena index of
/// the subtree root, or [`NO_CHILD`] for single-state ranges.
fn build(nodes: &mut Vec<Node>, lo: usize, hi: usize) -> usize {
    if hi - lo <= 1 {
        return NO_CHILD;
    }
    let mid = lo + (hi - lo) / 2;
    let left = build(nodes, lo, mid);
    let right = build(nodes, mid, hi);
    nodes.push(Node {
        lo,
        mid,
        hi,
        log_w: [0.0, 0.0],
        phase_cost: [0.0, 0.0],
        child: [left, right],
    });
    nodes.len() - 1
}

fn hedge_probs(log_w: [f64; 2]) -> (f64, f64) {
    let m = log_w[0].max(log_w[1]);
    let a = (log_w[0] - m).exp();
    let b = (log_w[1] - m).exp();
    (a / (a + b), b / (a + b))
}

impl MtsPolicy for HstHedge {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn state(&self) -> usize {
        self.coupling.state()
    }

    fn serve(&mut self, costs: &[f64]) -> usize {
        validate_costs(costs, self.num_states);
        self.serves += 1;
        if self.num_states == 1 {
            return 0;
        }
        self.serve_with(|i| costs[i], |lo, hi| costs[lo..hi].iter().sum::<f64>())
    }

    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(
            index < self.num_states,
            "hit index {index} out of range 0..{}",
            self.num_states
        );
        self.hits += 1;
        if self.num_states == 1 {
            return 0;
        }
        self.serve_with(
            move |i| if i == index { 1.0 } else { 0.0 },
            move |lo, hi| if lo <= index && index < hi { 1.0 } else { 0.0 },
        )
    }

    fn name(&self) -> &'static str {
        "hst-hedge"
    }

    // The tree topology is construction-derived from `num_states`;
    // only each node's Hedge weights and phase accumulators are live
    // state (stored flat in arena order), plus the coupling and RNG.
    // `probs_fresh` rides along so a restored policy performs exactly
    // the work the uninterrupted one would: whether the next serve may
    // reuse the cached leaf distribution is part of the state, and
    // dropping it would make a live-migrated session's work counters
    // drift from the unmigrated twin by one cache hit per restore.
    fn export_state(&self) -> Option<Value> {
        let log_w: Vec<Vec<f64>> = self.nodes.iter().map(|n| n.log_w.to_vec()).collect();
        let phase: Vec<Vec<f64>> = self.nodes.iter().map(|n| n.phase_cost.to_vec()).collect();
        Some(Value::Obj(vec![
            ("log_w".into(), log_w.to_value()),
            ("phase_cost".into(), phase.to_value()),
            ("coupling".into(), coupling_to_value(&self.coupling)),
            ("rng".into(), self.rng.to_value()),
            ("probs_fresh".into(), self.probs_fresh.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let log_w = <Vec<Vec<f64>> as Deserialize>::from_value(state.get_field("log_w")?)?;
        let phase = <Vec<Vec<f64>> as Deserialize>::from_value(state.get_field("phase_cost")?)?;
        if log_w.len() != self.nodes.len() || phase.len() != self.nodes.len() {
            return Err(DeError(format!(
                "node count mismatch: snapshot has {}/{} nodes, tree has {}",
                log_w.len(),
                phase.len(),
                self.nodes.len()
            )));
        }
        if log_w.iter().chain(&phase).any(|pair| pair.len() != 2) {
            return Err(DeError("per-node state must have 2 entries".into()));
        }
        let coupling = coupling_from_value(state.get_field("coupling")?, self.num_states)?;
        let probs_fresh = bool::from_value(state.get_field("probs_fresh")?)?;
        self.rng = StdRng::from_value(state.get_field("rng")?)?;
        self.coupling = coupling;
        for (node, (w, p)) in self.nodes.iter_mut().zip(log_w.iter().zip(&phase)) {
            node.log_w = [w[0], w[1]];
            node.phase_cost = [p[0], p[1]];
        }
        // Rebuild the derived caches for the restored weights. When the
        // snapshot was taken with a fresh leaf distribution, recompute
        // it now (bit-identical: `refresh_probs` is deterministic in
        // `cond`) so the next serve reuses it exactly as the
        // uninterrupted session would have.
        for (idx, node) in self.nodes.iter().enumerate() {
            self.cond[idx] = hedge_probs(node.log_w);
        }
        if probs_fresh {
            self.refresh_probs();
        }
        self.probs_fresh = probs_fresh;
        Ok(())
    }

    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters {
            serve_vector: self.serves,
            serve_hit: self.hits,
            node_visits: self.node_visits,
            cache_hits: self.cache_hits,
            coupling_follows: self.coupling.follows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn starts_at_requested_state() {
        for n in [1usize, 2, 3, 7, 16, 31] {
            for init in [0, n / 2, n - 1] {
                let p = HstHedge::new(n, init, 5);
                assert_eq!(p.state(), init, "n={n} init={init}");
            }
        }
    }

    #[test]
    fn initial_distribution_is_dyadic_uniformish() {
        // For a power of two, the product of fair coin flips is uniform.
        let p = HstHedge::new(8, 0, 1);
        let d = p.leaf_distribution();
        for i in 0..8 {
            assert!((d.prob(i) - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn mass_drains_from_hammered_state() {
        let n = 16;
        let mut p = HstHedge::new(n, 5, 2);
        let before = p.leaf_distribution().prob(5);
        for _ in 0..60 {
            p.serve(&unit(n, 5));
        }
        let after = p.leaf_distribution().prob(5);
        assert!(
            after < before / 2.0,
            "mass should drain: {before} -> {after}"
        );
    }

    #[test]
    fn phase_reset_forgives_history() {
        // Hammer left half until phases cycle, then hammer right half;
        // the policy should recover mass on the left.
        let n = 8;
        let mut p = HstHedge::new(n, 0, 3);
        let left_heavy: Vec<f64> = (0..n).map(|i| if i < 4 { 1.0 } else { 0.0 }).collect();
        let right_heavy: Vec<f64> = (0..n).map(|i| if i >= 4 { 1.0 } else { 0.0 }).collect();
        for _ in 0..200 {
            p.serve(&left_heavy);
        }
        let after_left: f64 = (0..4).map(|i| p.leaf_distribution().prob(i)).sum();
        for _ in 0..200 {
            p.serve(&right_heavy);
        }
        let recovered: f64 = (0..4).map(|i| p.leaf_distribution().prob(i)).sum();
        assert!(
            after_left < 0.2,
            "left mass should be tiny, got {after_left}"
        );
        assert!(recovered > 0.8, "left mass should recover, got {recovered}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let n = 12;
        let run = |seed: u64| {
            let mut p = HstHedge::new(n, 6, seed);
            (0..80)
                .map(|t| p.serve(&unit(n, (t * 5) % n)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn single_state_is_trivial() {
        let mut p = HstHedge::new(1, 0, 0);
        assert_eq!(p.serve(&[3.0]), 0);
        assert_eq!(p.num_states(), 1);
    }

    #[test]
    fn oblivious_round_robin_tracks_offline_optimum() {
        // Oblivious adversary (adaptive chasers void randomized
        // guarantees): hammer states round-robin. OPT pays ≈ T/N by
        // sitting anywhere; the hedge should stay within a polylog
        // factor plus the usual additive diameter·log term.
        let n = 32;
        let mut p = HstHedge::new(n, 16, 9);
        let steps = 60 * n;
        let tasks: Vec<Vec<f64>> = (0..steps).map(|t| unit(n, t % n)).collect();
        let mut total = 0.0;
        for task in &tasks {
            let cur = p.state();
            let next = p.serve(task);
            total += task[next] + cur.abs_diff(next) as f64;
        }
        let opt = crate::offline::optimum(n, 16, &tasks);
        let logn = (n as f64).ln();
        let budget = 8.0 * logn * logn * opt + 4.0 * n as f64 * logn;
        assert!(
            total <= budget,
            "hedge paid {total}, opt {opt}, budget {budget}"
        );
    }
}
