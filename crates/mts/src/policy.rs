//! The policy interface and the MTS cost model.

use serde::{DeError, Value};

/// Deterministic work counters of one MTS policy instance — the
/// policy-layer slice of the perf gate's counter taxonomy (see
/// `rdbp_model::WorkCounters`; higher layers merge these in through
/// `OnlineAlgorithm::work_counters`).
///
/// All fields are plain `u64` tallies of work performed since
/// construction; they never influence behaviour and are never part of a
/// snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyCounters {
    /// [`MtsPolicy::serve`] calls (explicit cost-vector path).
    pub serve_vector: u64,
    /// [`MtsPolicy::serve_hit`] calls (point fast path).
    pub serve_hit: u64,
    /// Hierarchy nodes whose weights were updated
    /// ([`crate::HstHedge`] only).
    pub node_visits: u64,
    /// Serves that reused a cached distribution instead of recomputing
    /// it ([`crate::HstHedge`] only).
    pub cache_hits: u64,
    /// Quantile-coupling follow/resample operations (randomized
    /// policies).
    pub coupling_follows: u64,
}

impl PolicyCounters {
    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.serve_vector += other.serve_vector;
        self.serve_hit += other.serve_hit;
        self.node_visits += other.node_visits;
        self.cache_hits += other.cache_hits;
        self.coupling_follows += other.coupling_follows;
    }

    /// Componentwise `self − earlier`: the work performed between two
    /// counter snapshots of the same policy (differential tests use
    /// this to assert a restored twin pays exactly what the
    /// uninterrupted one does).
    ///
    /// # Panics
    /// Panics if any counter of `earlier` exceeds `self`'s (snapshots
    /// out of order).
    #[must_use]
    pub fn diff(&self, earlier: &Self) -> Self {
        Self {
            serve_vector: self.serve_vector - earlier.serve_vector,
            serve_hit: self.serve_hit - earlier.serve_hit,
            node_visits: self.node_visits - earlier.node_visits,
            cache_hits: self.cache_hits - earlier.cache_hits,
            coupling_follows: self.coupling_follows - earlier.coupling_follows,
        }
    }
}

/// An online policy for a metrical task system on the **line metric**
/// with states `0..num_states` and `d(i,j) = |i−j|`.
///
/// Protocol per task: the caller presents a cost vector `T`; the policy
/// moves to a (possibly unchanged) state `s` and the caller charges
/// `d(s_prev, s) + T[s]` — movement plus service in the *new* state,
/// exactly the MTS cost model of Section 3.1.
pub trait MtsPolicy {
    /// Number of states `N`.
    fn num_states(&self) -> usize;

    /// The currently occupied state.
    fn state(&self) -> usize;

    /// Processes one task; returns the new state.
    ///
    /// # Panics
    /// Implementations panic if `costs.len() != num_states()` or any
    /// cost is negative/NaN.
    fn serve(&mut self, costs: &[f64]) -> usize;

    /// Point-request fast path: serves the unit task `e_index` (cost 1
    /// on state `index`, 0 elsewhere) without the caller materializing
    /// a cost vector.
    ///
    /// This is the only task shape the ring-partitioning reduction ever
    /// produces (a request inside an interval becomes a unit cost on
    /// its cut-edge state), so the partitioning hot loop calls this
    /// instead of building an O(N) one-hot scratch vector per request.
    /// The default falls back to the cost-vector path (allocating);
    /// implementations specialize it to the equivalent allocation-free
    /// update. A specialization must behave exactly like
    /// `serve(&one_hot(index))`.
    ///
    /// # Panics
    /// Panics if `index >= num_states()`.
    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(
            index < self.num_states(),
            "hit index {index} out of range 0..{}",
            self.num_states()
        );
        let mut costs = vec![0.0; self.num_states()];
        costs[index] = 1.0;
        self.serve(&costs)
    }

    /// Weighted point request: serves the task `weight · e_index`
    /// (cost `weight` on state `index`, 0 elsewhere). The generalized
    /// learning model's reduction produces exactly this task shape — a
    /// request on a pair with learning cost `w` becomes weight `w` on
    /// its cut-edge state — so the family hook lives here rather than
    /// in every caller. `weight = 1.0` must behave exactly like
    /// [`MtsPolicy::serve_hit`]; the default builds the scaled one-hot
    /// vector and falls back to [`MtsPolicy::serve`].
    ///
    /// # Panics
    /// Panics if `index >= num_states()` or `weight` is negative/NaN.
    fn serve_weighted(&mut self, index: usize, weight: f64) -> usize {
        assert!(
            index < self.num_states(),
            "hit index {index} out of range 0..{}",
            self.num_states()
        );
        assert!(
            weight.is_finite() && weight >= 0.0,
            "task weight must be finite and non-negative, got {weight}"
        );
        let mut costs = vec![0.0; self.num_states()];
        costs[index] = weight;
        self.serve(&costs)
    }

    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Exports a serializable snapshot of all mutable state, or `None`
    /// if the policy does not support checkpointing. Restoring the
    /// snapshot into a freshly built (same `num_states`/`initial`/
    /// `seed`) policy must continue the `serve` stream bit-identically —
    /// the contract higher layers (the serve subsystem's
    /// snapshot/restore) are built on.
    fn export_state(&self) -> Option<Value> {
        None
    }

    /// Restores a snapshot produced by [`Self::export_state`] on an
    /// identically-configured policy.
    ///
    /// # Errors
    /// Returns a [`DeError`] if the policy does not support
    /// checkpointing or the snapshot does not fit.
    fn restore_state(&mut self, _state: &Value) -> Result<(), DeError> {
        Err(DeError(format!(
            "policy `{}` does not support snapshot/restore",
            self.name()
        )))
    }

    /// The policy's deterministic work counters (see
    /// [`PolicyCounters`]). Defaults to all-zero for policies without
    /// instrumentation; the built-in policies all specialize it.
    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters::default()
    }
}

/// Serializes a [`rdbp_smin::QuantileCoupling`] as `[u, state, moved]`.
#[must_use]
pub(crate) fn coupling_to_value(c: &rdbp_smin::QuantileCoupling) -> Value {
    use serde::Serialize;
    (c.u(), c.state(), c.distance_moved()).to_value()
}

/// Restores a [`rdbp_smin::QuantileCoupling`] from
/// [`coupling_to_value`] output, validating the state range.
pub(crate) fn coupling_from_value(
    v: &Value,
    num_states: usize,
) -> Result<rdbp_smin::QuantileCoupling, DeError> {
    let (u, state, moved) = <(f64, usize, u64) as serde::Deserialize>::from_value(v)?;
    if !(0.0..=1.0).contains(&u) {
        return Err(DeError(format!("coupling u {u} outside [0,1]")));
    }
    if state >= num_states {
        return Err(DeError(format!(
            "coupling state {state} out of range 0..{num_states}"
        )));
    }
    Ok(rdbp_smin::QuantileCoupling::from_parts(u, state, moved))
}

/// Which MTS policy to instantiate inside higher-level algorithms.
///
/// The dynamic partitioner (Theorem 2.1) is parameterized by this —
/// ablation A1 in EXPERIMENTS.md compares the choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Deterministic work-function algorithm.
    WorkFunction,
    /// Randomized smin-gradient (share-style) policy.
    SminGradient,
    /// Randomized hierarchical Hedge with phase resets.
    HstHedge,
    /// Randomized uniform-metric marking (a reference point, not a
    /// line-metric algorithm — its guarantees do not transfer to the
    /// ring reduction; used by ablations and the perf-gate suite).
    Marking,
}

impl PolicyKind {
    /// Builds a boxed policy over `num_states` line states starting at
    /// `initial`, seeding any internal randomness from `seed`.
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn build(self, num_states: usize, initial: usize, seed: u64) -> Box<dyn MtsPolicy> {
        match self {
            PolicyKind::WorkFunction => Box::new(crate::WorkFunction::new(num_states, initial)),
            PolicyKind::SminGradient => {
                Box::new(crate::SminGradient::new(num_states, initial, seed))
            }
            PolicyKind::HstHedge => Box::new(crate::HstHedge::new(num_states, initial, seed)),
            PolicyKind::Marking => Box::new(crate::Marking::new(num_states, initial, seed)),
        }
    }

    /// Stable label for file names and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::WorkFunction => "wfa",
            PolicyKind::SminGradient => "smin",
            PolicyKind::HstHedge => "hst-hedge",
            PolicyKind::Marking => "marking",
        }
    }
}

/// Accumulated MTS costs of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MtsCosts {
    /// Σ `T_t(s_t)` — cost of serving each task in the chosen state.
    pub service: f64,
    /// Σ `d(s_{t-1}, s_t)` — total line distance traveled.
    pub movement: u64,
}

impl MtsCosts {
    /// `service + movement` — the MTS objective.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.service + self.movement as f64
    }
}

/// Runs a policy over a task sequence, charging costs per the MTS
/// protocol.
///
/// # Panics
/// Panics if any task has the wrong arity (propagated from the policy).
pub fn run_policy<P: MtsPolicy + ?Sized>(policy: &mut P, tasks: &[Vec<f64>]) -> MtsCosts {
    let mut costs = MtsCosts::default();
    for task in tasks {
        let prev = policy.state();
        let next = policy.serve(task);
        costs.movement += prev.abs_diff(next) as u64;
        costs.service += task[next];
    }
    costs
}

/// Validates a cost vector: correct arity, finite, non-negative.
///
/// # Panics
/// Panics when the contract is violated; shared by all policy
/// implementations.
pub(crate) fn validate_costs(costs: &[f64], num_states: usize) {
    assert_eq!(
        costs.len(),
        num_states,
        "cost vector arity {} != number of states {num_states}",
        costs.len()
    );
    for &c in costs {
        assert!(c.is_finite() && c >= 0.0, "invalid task cost {c}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A policy that never moves.
    struct Sitter {
        n: usize,
        s: usize,
    }

    impl MtsPolicy for Sitter {
        fn num_states(&self) -> usize {
            self.n
        }
        fn state(&self) -> usize {
            self.s
        }
        fn serve(&mut self, costs: &[f64]) -> usize {
            validate_costs(costs, self.n);
            self.s
        }
        fn name(&self) -> &'static str {
            "sitter"
        }
    }

    #[test]
    fn run_policy_charges_service_in_new_state() {
        let mut p = Sitter { n: 3, s: 1 };
        let tasks = vec![vec![0.0, 2.0, 0.0], vec![5.0, 0.5, 0.0]];
        let c = run_policy(&mut p, &tasks);
        assert_eq!(c.movement, 0);
        assert!((c.service - 2.5).abs() < 1e-12);
        assert!((c.total() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn policy_kind_builds_each_variant() {
        for kind in [
            PolicyKind::WorkFunction,
            PolicyKind::SminGradient,
            PolicyKind::HstHedge,
            PolicyKind::Marking,
        ] {
            let p = kind.build(8, 3, 42);
            assert_eq!(p.num_states(), 8);
            assert_eq!(p.state(), 3);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut p = Sitter { n: 3, s: 0 };
        let _ = p.serve(&[1.0, 2.0]);
    }

    #[test]
    fn serve_hit_equals_one_hot_serve_for_every_policy() {
        // Two identically-seeded twins of each policy: one fed one-hot
        // cost vectors through `serve`, one fed the same hits through
        // `serve_hit`. The realized state sequences must coincide — the
        // fast path may not change behaviour, only skip the vector.
        let n = 23;
        let make: Vec<Box<dyn Fn() -> Box<dyn MtsPolicy>>> = vec![
            Box::new(|| Box::new(crate::WorkFunction::new(23, 11))),
            Box::new(|| Box::new(crate::SminGradient::new(23, 11, 42))),
            Box::new(|| Box::new(crate::HstHedge::new(23, 11, 42))),
            Box::new(|| Box::new(crate::Marking::new(23, 11, 42))),
        ];
        for build in make {
            let mut by_vector = build();
            let mut by_hit = build();
            let name = by_hit.name();
            let mut costs = vec![0.0; n];
            for t in 0..400usize {
                let hit = (t * 7 + t * t % 5) % n;
                costs[hit] = 1.0;
                let a = by_vector.serve(&costs);
                costs[hit] = 0.0;
                let b = by_hit.serve_hit(hit);
                assert_eq!(a, b, "{name}: diverged at step {t} (hit {hit})");
            }
        }
    }

    #[test]
    fn work_counters_track_serve_shapes_per_policy() {
        for kind in [
            PolicyKind::WorkFunction,
            PolicyKind::SminGradient,
            PolicyKind::HstHedge,
            PolicyKind::Marking,
        ] {
            let mut p = kind.build(16, 8, 7);
            assert_eq!(p.work_counters(), PolicyCounters::default());
            let mut costs = vec![0.0; 16];
            costs[3] = 1.0;
            for _ in 0..5 {
                let _ = p.serve(&costs);
            }
            for i in 0..9 {
                let _ = p.serve_hit(i);
            }
            let c = p.work_counters();
            assert_eq!(c.serve_vector, 5, "{}", kind.label());
            assert_eq!(c.serve_hit, 9, "{}", kind.label());
            if kind == PolicyKind::HstHedge {
                assert!(c.node_visits > 0, "hedge must visit nodes");
                assert!(
                    c.cache_hits >= 13,
                    "all but the first serve reuse the cached distribution"
                );
            }
            if matches!(kind, PolicyKind::SminGradient | PolicyKind::HstHedge) {
                assert_eq!(c.coupling_follows, 14, "one follow per served task");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn serve_hit_rejects_bad_index() {
        let mut p = Sitter { n: 3, s: 0 };
        let _ = p.serve_hit(3);
    }

    #[test]
    fn serve_weighted_at_unit_weight_equals_serve_hit_for_every_policy() {
        // The generalized-learning hook must be a strict extension: at
        // weight 1 the state sequence coincides with `serve_hit` for
        // identically-seeded twins of each policy.
        let n = 23;
        let make: Vec<Box<dyn Fn() -> Box<dyn MtsPolicy>>> = vec![
            Box::new(|| Box::new(crate::WorkFunction::new(23, 11))),
            Box::new(|| Box::new(crate::SminGradient::new(23, 11, 42))),
            Box::new(|| Box::new(crate::HstHedge::new(23, 11, 42))),
            Box::new(|| Box::new(crate::Marking::new(23, 11, 42))),
        ];
        for build in make {
            let mut by_hit = build();
            let mut by_weight = build();
            let name = by_hit.name();
            for t in 0..200usize {
                let hit = (t * 7 + t * t % 5) % n;
                let a = by_hit.serve_hit(hit);
                let b = by_weight.serve_weighted(hit, 1.0);
                assert_eq!(a, b, "{name}: diverged at step {t} (hit {hit})");
            }
        }
    }

    #[test]
    fn serve_weighted_scales_the_task() {
        // On the work function, a weight-3 hit equals serving the
        // scaled one-hot vector through `serve`.
        let mut by_vector = crate::WorkFunction::new(9, 4);
        let mut by_weight = crate::WorkFunction::new(9, 4);
        let mut costs = vec![0.0; 9];
        for t in 0..100usize {
            let hit = (t * 5 + 1) % 9;
            costs[hit] = 3.0;
            let a = by_vector.serve(&costs);
            costs[hit] = 0.0;
            let b = by_weight.serve_weighted(hit, 3.0);
            assert_eq!(a, b, "diverged at step {t}");
        }
    }

    #[test]
    #[should_panic(expected = "task weight")]
    fn serve_weighted_rejects_nan_weights() {
        let mut p = Sitter { n: 3, s: 0 };
        let _ = p.serve_weighted(1, f64::NAN);
    }
}
