//! The deterministic work-function algorithm on the line.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::policy::{validate_costs, MtsPolicy, PolicyCounters};

/// Work-function algorithm (Borodin–Linial–Saks \[21\]), specialized to
/// the line metric.
///
/// The work function after `t` tasks is
/// `w_t(x) = min_y ( w_{t-1}(y) + T_t(y) + d(y, x) )` — the cheapest way
/// to have served all tasks and end in state `x`. On a line the min-plus
/// convolution with `d(y,x) = |y−x|` is two linear sweeps, so each task
/// costs O(N).
///
/// After updating, the algorithm moves to the state minimizing
/// `w_t(x) + d(x, s_{t-1})`, breaking ties toward staying put and then
/// toward the lower index. This is (2N−1)-competitive against the
/// *dynamic* offline optimum on any metric — the conservative
/// instantiation of the paper's MTS black box.
#[derive(Debug, Clone)]
pub struct WorkFunction {
    w: Vec<f64>,
    state: usize,
    scratch: Vec<f64>,
    /// Work counters: serves by task shape (transient, never
    /// snapshotted).
    serves: u64,
    hits: u64,
}

impl WorkFunction {
    /// Creates the algorithm on `num_states` line states, starting at
    /// `initial` (work function initialized to `d(initial, ·)`).
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn new(num_states: usize, initial: usize) -> Self {
        assert!(num_states > 0, "need at least one state");
        assert!(initial < num_states, "initial state out of range");
        let w = (0..num_states)
            .map(|x| x.abs_diff(initial) as f64)
            .collect();
        Self {
            w,
            state: initial,
            scratch: vec![0.0; num_states],
            serves: 0,
            hits: 0,
        }
    }

    /// Read-only view of the current work function (used by tests and
    /// the well-behaved-strategy analysis).
    #[must_use]
    pub fn work_function(&self) -> &[f64] {
        &self.w
    }

    /// Shared tail of `serve`/`serve_hit`: min-plus convolve the
    /// prepared `scratch` (= `w_{t-1} + T_t`) with the line metric and
    /// move to the best state.
    fn settle(&mut self) -> usize {
        let n = self.w.len();
        // Forward: w_t(x) = min(w_t(x-1) + 1, tmp(x)).
        let mut best = f64::INFINITY;
        for x in 0..n {
            best = (best + 1.0).min(self.scratch[x]);
            self.w[x] = best;
        }
        // Backward: w_t(x) = min(w_t(x), w_t(x+1) + 1).
        let mut best = f64::INFINITY;
        for x in (0..n).rev() {
            best = (best + 1.0).min(self.w[x]);
            self.w[x] = best;
        }

        // Move to argmin_x w_t(x) + d(x, s_prev). Tie-breaking matters:
        // among minimizers, prefer the *smaller work-function value*
        // (the retrospectively cheaper state). Without this rule the
        // algorithm can sit in a saturated state forever, paying every
        // request, because w stops changing once neighbours cap it.
        let prev = self.state;
        let mut best_x = prev;
        let mut best_v = self.w[prev];
        let mut best_w = self.w[prev];
        for (x, &wx) in self.w.iter().enumerate() {
            let v = wx + x.abs_diff(prev) as f64;
            if v + 1e-9 < best_v || (v < best_v + 1e-9 && wx + 1e-9 < best_w) {
                best_v = v;
                best_x = x;
                best_w = wx;
            }
        }
        self.state = best_x;
        best_x
    }
}

impl MtsPolicy for WorkFunction {
    fn num_states(&self) -> usize {
        self.w.len()
    }

    fn state(&self) -> usize {
        self.state
    }

    fn serve(&mut self, costs: &[f64]) -> usize {
        validate_costs(costs, self.w.len());
        self.serves += 1;
        // tmp(y) = w_{t-1}(y) + T_t(y); then min-plus with |y − x| via a
        // forward and a backward sweep (in `settle`).
        crate::vecops::sum_into(&mut self.scratch, &self.w, costs);
        self.settle()
    }

    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(index < self.w.len(), "hit index {index} out of range");
        self.hits += 1;
        // One-hot task: tmp = w except tmp(index) = w(index) + 1.
        self.scratch.copy_from_slice(&self.w);
        self.scratch[index] += 1.0;
        self.settle()
    }

    fn name(&self) -> &'static str {
        "work-function"
    }

    fn export_state(&self) -> Option<Value> {
        Some(Value::Obj(vec![
            ("w".into(), self.w.to_value()),
            ("state".into(), self.state.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let w = <Vec<f64> as Deserialize>::from_value(state.get_field("w")?)?;
        let s = usize::from_value(state.get_field("state")?)?;
        if w.len() != self.w.len() {
            return Err(DeError(format!(
                "work function arity {} != {}",
                w.len(),
                self.w.len()
            )));
        }
        if s >= self.w.len() {
            return Err(DeError(format!("state {s} out of range")));
        }
        self.w = w;
        self.state = s;
        Ok(())
    }

    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters {
            serve_vector: self.serves,
            serve_hit: self.hits,
            ..PolicyCounters::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::run_policy;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn initial_work_function_is_distance() {
        let wfa = WorkFunction::new(5, 2);
        assert_eq!(wfa.work_function(), &[2.0, 1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn stays_put_when_cost_is_elsewhere() {
        let mut wfa = WorkFunction::new(5, 2);
        let s = wfa.serve(&unit(5, 0));
        assert_eq!(s, 2, "no reason to move when another state is hit");
    }

    #[test]
    fn eventually_flees_a_hammered_state() {
        let mut wfa = WorkFunction::new(5, 2);
        let mut moved = false;
        for _ in 0..20 {
            if wfa.serve(&unit(5, 2)) != 2 {
                moved = true;
                break;
            }
        }
        assert!(moved, "WFA must leave a state with unbounded cost");
    }

    #[test]
    fn work_function_is_one_lipschitz() {
        // |w(x) − w(x+1)| ≤ 1 always holds for line work functions.
        let mut wfa = WorkFunction::new(9, 4);
        for i in [0usize, 3, 3, 8, 4, 4, 4, 1] {
            wfa.serve(&unit(9, i));
            for pair in wfa.work_function().windows(2) {
                assert!((pair[0] - pair[1]).abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn chasing_adversary_respects_wfa_guarantee() {
        // WFA is deterministic, so the adaptive position-chaser is a
        // legitimate adversary. Record the chased sequence and compare
        // against the exact offline optimum: cost ≤ (2N−1)·OPT + O(N).
        let n = 16;
        let mut wfa = WorkFunction::new(n, n / 2);
        let mut total = 0.0;
        let steps = 40 * n;
        let mut tasks = Vec::with_capacity(steps);
        for _ in 0..steps {
            let cur = wfa.state();
            let task = unit(n, cur);
            let next = wfa.serve(&task);
            total += task[next] + cur.abs_diff(next) as f64;
            tasks.push(task);
        }
        let opt = crate::offline::optimum(n, n / 2, &tasks);
        let bound = (2 * n - 1) as f64 * opt + 2.0 * n as f64;
        assert!(total <= bound, "WFA paid {total}, opt {opt}, bound {bound}");
    }

    #[test]
    fn run_policy_integrates() {
        // Hammering the start state: WFA pays a couple of hits, then
        // sidesteps once and parks — total far below the horizon.
        let mut wfa = WorkFunction::new(4, 0);
        let tasks: Vec<Vec<f64>> = (0..10).map(|_| unit(4, 0)).collect();
        let c = run_policy(&mut wfa, &tasks);
        assert!(c.total() > 0.0);
        assert!(c.total() < 10.0);
    }

    #[test]
    #[should_panic(expected = "initial state out of range")]
    fn rejects_bad_initial() {
        let _ = WorkFunction::new(3, 3);
    }
}
