//! Chunked elementwise kernels for the cost-vector serve path.
//!
//! The three dense policies (`WorkFunction`, `SminGradient`, `Marking`)
//! open every vector serve with the same shape of loop: one elementwise
//! pass over `num_states` floats. These helpers run that pass in fixed
//! 8-lane chunks via `chunks_exact`, which the compiler can keep fully
//! in registers and auto-vectorize — the slice lengths are equal by
//! construction so every chunk is bounds-check-free.
//!
//! Both kernels are strictly elementwise (no reductions), so chunking
//! never reassociates floating-point operations: results are
//! bit-identical to the naive `zip` loops they replace.

/// SIMD-friendly chunk width (one AVX-512 register / two AVX2 registers
/// of `f64`).
const CHUNK: usize = 8;

/// `acc[i] += add[i]` for all `i`.
///
/// # Panics
/// Panics (in debug) if the slice lengths differ.
pub(crate) fn add_assign(acc: &mut [f64], add: &[f64]) {
    debug_assert_eq!(acc.len(), add.len());
    let mut acc_chunks = acc.chunks_exact_mut(CHUNK);
    let mut add_chunks = add.chunks_exact(CHUNK);
    for (a, b) in acc_chunks.by_ref().zip(add_chunks.by_ref()) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }
    for (x, &y) in acc_chunks
        .into_remainder()
        .iter_mut()
        .zip(add_chunks.remainder())
    {
        *x += y;
    }
}

/// `out[i] = a[i] + b[i]` for all `i`.
///
/// # Panics
/// Panics (in debug) if the slice lengths differ.
pub(crate) fn sum_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    let mut out_chunks = out.chunks_exact_mut(CHUNK);
    let mut a_chunks = a.chunks_exact(CHUNK);
    let mut b_chunks = b.chunks_exact(CHUNK);
    for ((o, x), y) in out_chunks
        .by_ref()
        .zip(a_chunks.by_ref())
        .zip(b_chunks.by_ref())
    {
        for ((dst, &p), &q) in o.iter_mut().zip(x).zip(y) {
            *dst = p + q;
        }
    }
    for ((dst, &p), &q) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(a_chunks.remainder())
        .zip(b_chunks.remainder())
    {
        *dst = p + q;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_matches_naive_across_tail_lengths() {
        // Cover empty, sub-chunk, exact-chunk and chunk+tail lengths.
        for n in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            let mut acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let add: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let expect: Vec<f64> = acc.iter().zip(&add).map(|(a, b)| a + b).collect();
            add_assign(&mut acc, &add);
            assert_eq!(acc, expect, "n={n}");
        }
    }

    #[test]
    fn sum_into_matches_naive_across_tail_lengths() {
        for n in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let b: Vec<f64> = (0..n).map(|i| i as f64 * -1.25).collect();
            let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let mut out = vec![0.0; n];
            sum_into(&mut out, &a, &b);
            assert_eq!(out, expect, "n={n}");
        }
    }
}
