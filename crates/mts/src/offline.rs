//! Exact offline optimum for MTS on the line.
//!
//! `OPT_MTS(I)` from Lemma 3.3: the cheapest way to process a task
//! sequence when the whole sequence is known in advance. On a line
//! metric the Bellman update
//! `opt_t(x) = T_t(x) + min_y ( opt_{t-1}(y) + |y − x| )`
//! is a min-plus convolution with unit slopes, computable with one
//! forward and one backward sweep — O(N) per task.

/// Exact optimum cost for serving `tasks` starting from state `initial`
/// (the start state incurs no placement cost, matching the online
/// policies' convention).
///
/// # Panics
/// Panics if `num_states == 0`, `initial` is out of range, or any task
/// has wrong arity / negative cost.
#[must_use]
pub fn optimum(num_states: usize, initial: usize, tasks: &[Vec<f64>]) -> f64 {
    let (cost, _) = solve(num_states, initial, tasks, false);
    cost
}

/// Exact optimum together with one optimal state trajectory
/// (`trajectory[t]` = state after serving task `t`).
///
/// Uses O(T·N) memory for backpointers — fine for analysis runs, avoid
/// for very long sequences.
///
/// # Panics
/// Same contract as [`optimum`].
#[must_use]
pub fn optimum_with_trajectory(
    num_states: usize,
    initial: usize,
    tasks: &[Vec<f64>],
) -> (f64, Vec<usize>) {
    let (cost, traj) = solve(num_states, initial, tasks, true);
    (cost, traj.expect("trajectory requested"))
}

#[allow(clippy::too_many_lines)]
fn solve(
    num_states: usize,
    initial: usize,
    tasks: &[Vec<f64>],
    want_trajectory: bool,
) -> (f64, Option<Vec<usize>>) {
    assert!(num_states > 0, "need at least one state");
    assert!(initial < num_states, "initial state out of range");

    // opt[x] = cheapest cost so far ending in state x.
    let mut opt: Vec<f64> = (0..num_states)
        .map(|x| x.abs_diff(initial) as f64)
        .collect();

    // Backpointers: for each step, from[x] = state occupied *before*
    // moving to x (the argmin of the min-plus convolution).
    let mut from_steps: Vec<Vec<u32>> = Vec::new();

    let mut scratch_from: Vec<u32> = (0..num_states as u32).collect();
    for task in tasks {
        assert_eq!(task.len(), num_states, "task arity mismatch");
        for &c in task {
            assert!(c.is_finite() && c >= 0.0, "invalid task cost {c}");
        }
        // Min-plus with |y − x|: forward then backward sweep, tracking
        // the argmin origin.
        if want_trajectory {
            for (x, f) in scratch_from.iter_mut().enumerate() {
                *f = x as u32;
            }
            let mut best = f64::INFINITY;
            let mut best_from = 0u32;
            for x in 0..num_states {
                if opt[x] < best + 1.0 {
                    best = opt[x];
                    best_from = x as u32;
                } else {
                    best += 1.0;
                }
                opt[x] = best;
                scratch_from[x] = best_from;
            }
            let mut best = f64::INFINITY;
            let mut best_from = 0u32;
            for x in (0..num_states).rev() {
                if opt[x] < best + 1.0 {
                    best = opt[x];
                    best_from = scratch_from[x];
                } else {
                    best += 1.0;
                }
                if best < opt[x] {
                    opt[x] = best;
                    scratch_from[x] = best_from;
                }
            }
            from_steps.push(scratch_from.clone());
        } else {
            let mut best = f64::INFINITY;
            for o in &mut opt {
                best = (best + 1.0).min(*o);
                *o = best;
            }
            let mut best = f64::INFINITY;
            for o in opt.iter_mut().rev() {
                best = (best + 1.0).min(*o);
                *o = best;
            }
        }
        for (o, &c) in opt.iter_mut().zip(task) {
            *o += c;
        }
    }

    let (mut arg, mut val) = (0usize, f64::INFINITY);
    for (x, &v) in opt.iter().enumerate() {
        if v < val {
            val = v;
            arg = x;
        }
    }

    if !want_trajectory {
        return (val, None);
    }

    let mut trajectory = vec![0usize; tasks.len()];
    let mut cur = arg;
    for (t, from) in from_steps.iter().enumerate().rev() {
        trajectory[t] = cur;
        cur = from[cur] as usize;
    }
    (val, Some(trajectory))
}

/// Brute-force optimum by explicit O(N²)-per-task Bellman — the
/// reference implementation the sweeps are property-tested against.
#[must_use]
pub fn optimum_bruteforce(num_states: usize, initial: usize, tasks: &[Vec<f64>]) -> f64 {
    assert!(num_states > 0 && initial < num_states);
    let mut opt: Vec<f64> = (0..num_states)
        .map(|x| x.abs_diff(initial) as f64)
        .collect();
    for task in tasks {
        let prev = opt.clone();
        for x in 0..num_states {
            let mut best = f64::INFINITY;
            for (y, &py) in prev.iter().enumerate() {
                best = best.min(py + x.abs_diff(y) as f64);
            }
            opt[x] = best + task[x];
        }
    }
    opt.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn empty_sequence_costs_nothing() {
        assert_eq!(optimum(5, 2, &[]), 0.0);
    }

    #[test]
    fn single_hot_state_is_dodged() {
        // Hammering state 2: OPT moves one step once (cost 1) and pays
        // nothing more.
        let n = 5;
        let tasks: Vec<_> = (0..10).map(|_| unit(n, 2)).collect();
        let opt = optimum(n, 2, &tasks);
        assert!((opt - 1.0).abs() < 1e-9, "opt={opt}");
    }

    #[test]
    fn alternating_far_requests_force_payment() {
        // States 0 and 4 alternate; staying in the middle costs 0 but
        // OPT never gets hit... requests hit only 0 and 4, so parking at
        // 2 forever costs 0 movement and 0 hits.
        let n = 5;
        let tasks: Vec<_> = (0..8)
            .map(|t| if t % 2 == 0 { unit(n, 0) } else { unit(n, 4) })
            .collect();
        let opt = optimum(n, 2, &tasks);
        assert!(opt.abs() < 1e-9);
    }

    #[test]
    fn all_states_hammered_forces_hits() {
        let n = 3;
        let tasks: Vec<_> = (0..6).map(|_| vec![1.0; n]).collect();
        let opt = optimum(n, 1, &tasks);
        assert!((opt - 6.0).abs() < 1e-9);
    }

    #[test]
    fn sweeps_match_bruteforce_on_fixed_cases() {
        let n = 7;
        let tasks: Vec<Vec<f64>> = vec![
            unit(n, 3),
            unit(n, 3),
            vec![0.5; n],
            unit(n, 0),
            unit(n, 6),
            unit(n, 3),
        ];
        for init in 0..n {
            let a = optimum(n, init, &tasks);
            let b = optimum_bruteforce(n, init, &tasks);
            assert!((a - b).abs() < 1e-9, "init {init}: {a} vs {b}");
        }
    }

    #[test]
    fn trajectory_cost_matches_reported_optimum() {
        let n = 6;
        let tasks: Vec<Vec<f64>> = vec![
            unit(n, 2),
            unit(n, 2),
            unit(n, 5),
            unit(n, 5),
            unit(n, 0),
            unit(n, 2),
            unit(n, 2),
        ];
        let init = 2;
        let (opt, traj) = optimum_with_trajectory(n, init, &tasks);
        assert_eq!(traj.len(), tasks.len());
        let mut cost = 0.0;
        let mut cur = init;
        for (t, task) in tasks.iter().enumerate() {
            cost += cur.abs_diff(traj[t]) as f64;
            cur = traj[t];
            cost += task[cur];
        }
        assert!(
            (cost - opt).abs() < 1e-9,
            "trajectory cost {cost} vs optimum {opt}"
        );
    }

    #[test]
    fn trajectory_is_feasible_states() {
        let n = 4;
        let tasks: Vec<Vec<f64>> = (0..12).map(|t| unit(n, t % n)).collect();
        let (_, traj) = optimum_with_trajectory(n, 0, &tasks);
        assert!(traj.iter().all(|&s| s < n));
    }
}
