//! Randomized marking policy for the uniform metric.
//!
//! Not used inside the partitioning algorithms (they need line
//! metrics), but a classical reference point for the policy ablation
//! and a correctness anchor in tests: on a uniform metric, phase-based
//! marking is O(log N)-competitive (Borodin–Linial–Saks \[21\]).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::policy::{validate_costs, MtsPolicy, PolicyCounters};

/// Phase-based randomized marking for MTS on the **uniform** metric
/// (`d(i,j) = 1` for `i ≠ j`).
///
/// Per phase every state accumulates its task costs; a state is *marked*
/// once its phase cost reaches 1 (the uniform diameter). The policy
/// occupies a uniformly random unmarked state and re-draws whenever its
/// state gets marked. When every state is marked the phase ends and all
/// marks clear.
///
/// Note: when embedded in [`crate::run_policy`] the *line* distance is
/// charged; use this policy only where the uniform approximation is
/// intended (tests, ablations).
#[derive(Debug)]
pub struct Marking {
    phase_cost: Vec<f64>,
    state: usize,
    rng: StdRng,
    moves: u64,
    /// Work counters: serves by task shape (transient, never
    /// snapshotted).
    serves: u64,
    hits: u64,
}

impl Marking {
    /// Creates the policy over `num_states` states starting at
    /// `initial`.
    ///
    /// # Panics
    /// Panics if `num_states == 0` or `initial >= num_states`.
    #[must_use]
    pub fn new(num_states: usize, initial: usize, seed: u64) -> Self {
        assert!(num_states > 0, "need at least one state");
        assert!(initial < num_states, "initial state out of range");
        Self {
            phase_cost: vec![0.0; num_states],
            state: initial,
            rng: StdRng::seed_from_u64(seed),
            moves: 0,
            serves: 0,
            hits: 0,
        }
    }

    /// Number of uniform-metric moves performed so far.
    #[must_use]
    pub fn uniform_moves(&self) -> u64 {
        self.moves
    }

    fn unmarked(&self) -> Vec<usize> {
        self.phase_cost
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < 1.0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Shared tail of `serve`/`serve_hit`: react to the already-updated
    /// phase costs (reset the phase if everything is marked, flee a
    /// marked state).
    fn advance(&mut self) -> usize {
        let mut unmarked = self.unmarked();
        if unmarked.is_empty() {
            // Phase ends: clear all marks, keep the accrued randomness.
            for acc in &mut self.phase_cost {
                *acc = 0.0;
            }
            unmarked = (0..self.phase_cost.len()).collect();
        }
        if self.phase_cost[self.state] >= 1.0 || !unmarked.contains(&self.state) {
            let pick = unmarked[self.rng.random_range(0..unmarked.len())];
            if pick != self.state {
                self.moves += 1;
            }
            self.state = pick;
        }
        self.state
    }
}

impl MtsPolicy for Marking {
    fn num_states(&self) -> usize {
        self.phase_cost.len()
    }

    fn state(&self) -> usize {
        self.state
    }

    fn serve(&mut self, costs: &[f64]) -> usize {
        validate_costs(costs, self.phase_cost.len());
        self.serves += 1;
        crate::vecops::add_assign(&mut self.phase_cost, costs);
        self.advance()
    }

    fn serve_hit(&mut self, index: usize) -> usize {
        assert!(index < self.phase_cost.len(), "hit index out of range");
        self.hits += 1;
        self.phase_cost[index] += 1.0;
        self.advance()
    }

    fn name(&self) -> &'static str {
        "marking"
    }

    fn export_state(&self) -> Option<Value> {
        Some(Value::Obj(vec![
            ("phase_cost".into(), self.phase_cost.to_value()),
            ("state".into(), self.state.to_value()),
            ("rng".into(), self.rng.to_value()),
            ("moves".into(), self.moves.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), DeError> {
        let phase = <Vec<f64> as Deserialize>::from_value(state.get_field("phase_cost")?)?;
        let s = usize::from_value(state.get_field("state")?)?;
        if phase.len() != self.phase_cost.len() {
            return Err(DeError(format!(
                "phase cost arity {} != {}",
                phase.len(),
                self.phase_cost.len()
            )));
        }
        if s >= phase.len() {
            return Err(DeError(format!("state {s} out of range")));
        }
        self.rng = StdRng::from_value(state.get_field("rng")?)?;
        self.moves = u64::from_value(state.get_field("moves")?)?;
        self.phase_cost = phase;
        self.state = s;
        Ok(())
    }

    fn work_counters(&self) -> PolicyCounters {
        PolicyCounters {
            serve_vector: self.serves,
            serve_hit: self.hits,
            ..PolicyCounters::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn leaves_marked_state() {
        let mut p = Marking::new(4, 0, 1);
        let s = p.serve(&unit(4, 0));
        assert_ne!(s, 0, "state 0 is marked after a full unit of cost");
    }

    #[test]
    fn ignores_cost_on_other_states_until_marked() {
        let mut p = Marking::new(4, 0, 1);
        for _ in 0..3 {
            // Half-units elsewhere should not move us.
            let mut costs = vec![0.0; 4];
            costs[2] = 0.4;
            assert_eq!(p.serve(&costs), 0);
        }
    }

    #[test]
    fn phase_resets_when_all_marked() {
        let n = 3;
        let mut p = Marking::new(n, 0, 7);
        // Mark everything.
        let _ = p.serve(&vec![1.0; n]);
        // All marked → phase reset happened on that serve; the policy
        // must still occupy a valid state and keep serving.
        for t in 0..10 {
            let s = p.serve(&unit(n, t % n));
            assert!(s < n);
        }
    }

    #[test]
    fn oblivious_round_robin_costs_log_per_phase() {
        // Oblivious adversary: hammer states 0,1,…,N−1 cyclically. Each
        // lap is one phase (every state gets marked once). The expected
        // number of moves per phase is H(N) ≈ ln N — the classic
        // randomized-paging argument. Note: against an *adaptive*
        // position-chaser no randomized policy can beat Ω(N)/phase;
        // oblivious is the right adversary model here.
        let n = 64;
        let mut p = Marking::new(n, 0, 3);
        let mut hits = 0.0;
        let steps = 50 * n;
        for t in 0..steps {
            let task = unit(n, t % n);
            let next = p.serve(&task);
            hits += task[next];
        }
        let phases = (steps / n) as f64;
        let per_phase = (p.uniform_moves() as f64 + hits) / phases;
        let budget = 3.0 * (n as f64).ln();
        assert!(
            per_phase < budget,
            "marking paid {per_phase}/phase, budget {budget}"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = |seed: u64| {
            let mut p = Marking::new(8, 0, seed);
            (0..50)
                .map(|t| p.serve(&unit(8, t % 8)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
