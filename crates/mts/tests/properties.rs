//! Cross-module property tests for the MTS crate: exactness of the
//! offline DP, competitiveness sanity of each online policy.

use proptest::prelude::*;
use rdbp_mts::{offline, run_policy, PolicyKind};

/// Random unit-task sequences (the only task shape the partitioning
/// reduction produces).
fn unit_tasks(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(0..n, 1..=len).prop_map(move |hits| {
        hits.into_iter()
            .map(|h| {
                let mut v = vec![0.0; n];
                v[h] = 1.0;
                v
            })
            .collect()
    })
}

/// Random dense task sequences with fractional costs.
fn dense_tasks(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..2.0, n..=n), 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The O(N)-per-task sweep DP equals the O(N²) brute force.
    #[test]
    fn offline_sweeps_match_bruteforce(tasks in dense_tasks(6, 12), init in 0usize..6) {
        let fast = offline::optimum(6, init, &tasks);
        let slow = offline::optimum_bruteforce(6, init, &tasks);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    /// The reconstructed trajectory achieves exactly the optimum value.
    #[test]
    fn offline_trajectory_is_optimal(tasks in unit_tasks(5, 15), init in 0usize..5) {
        let (opt, traj) = offline::optimum_with_trajectory(5, init, &tasks);
        let mut cost = 0.0;
        let mut cur = init;
        for (t, task) in tasks.iter().enumerate() {
            cost += cur.abs_diff(traj[t]) as f64;
            cur = traj[t];
            cost += task[cur];
        }
        prop_assert!((cost - opt).abs() < 1e-9, "traj {cost} vs opt {opt}");
    }

    /// Every online policy is weakly worse than the offline optimum,
    /// and the work function algorithm respects its (2N−1) guarantee
    /// with a +N slack for the finite horizon.
    #[test]
    fn online_policies_dominate_offline(tasks in unit_tasks(8, 40), init in 0usize..8) {
        let n = 8;
        let opt = offline::optimum(n, init, &tasks);
        for kind in [PolicyKind::WorkFunction, PolicyKind::SminGradient, PolicyKind::HstHedge] {
            let mut p = kind.build(n, init, 7);
            let c = run_policy(p.as_mut(), &tasks);
            prop_assert!(
                c.total() >= opt - 1e-9,
                "{}: online {} below optimum {opt}",
                kind.label(),
                c.total()
            );
        }
        // WFA guarantee: cost ≤ (2N−1)·OPT + additive (bounded by the
        // diameter for the finite prefix).
        let mut wfa = PolicyKind::WorkFunction.build(n, init, 0);
        let c = run_policy(wfa.as_mut(), &tasks);
        let bound = (2 * n - 1) as f64 * opt + 2.0 * n as f64;
        prop_assert!(c.total() <= bound + 1e-9, "WFA {} > bound {bound}", c.total());
    }

    /// Policies never step outside the state space and report the state
    /// they moved to.
    #[test]
    fn policies_stay_in_range(tasks in unit_tasks(9, 30), seed in 0u64..1000) {
        for kind in [PolicyKind::WorkFunction, PolicyKind::SminGradient, PolicyKind::HstHedge] {
            let mut p = kind.build(9, 4, seed);
            for task in &tasks {
                let s = p.serve(task);
                prop_assert!(s < 9);
                prop_assert_eq!(s, p.state());
            }
        }
    }
}

/// Deterministic spot-check: on a long single-state hammer, all three
/// policies end far from linear cost while a sitter pays every step.
#[test]
fn all_policies_beat_sitting_under_hammer() {
    let n = 16;
    let hot = 7;
    let tasks: Vec<Vec<f64>> = (0..800)
        .map(|_| {
            let mut v = vec![0.0; n];
            v[hot] = 1.0;
            v
        })
        .collect();
    for kind in [
        PolicyKind::WorkFunction,
        PolicyKind::SminGradient,
        PolicyKind::HstHedge,
    ] {
        let mut p = kind.build(n, hot, 13);
        let c = run_policy(p.as_mut(), &tasks);
        assert!(
            c.total() < 400.0,
            "{} paid {} on an 800-step hammer",
            kind.label(),
            c.total()
        );
    }
}
