//! Cross-module property tests for the MTS crate: exactness of the
//! offline DP, competitiveness sanity of each online policy, and the
//! arena-layout differentials (flat walk ≡ reference pointer tree,
//! snapshot round-trips of the flattened caches).

use proptest::prelude::*;
use rdbp_mts::{offline, run_policy, HstHedge, MtsPolicy, PolicyKind};

/// Random unit-task sequences (the only task shape the partitioning
/// reduction produces).
fn unit_tasks(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(0..n, 1..=len).prop_map(move |hits| {
        hits.into_iter()
            .map(|h| {
                let mut v = vec![0.0; n];
                v[h] = 1.0;
                v
            })
            .collect()
    })
}

/// Random dense task sequences with fractional costs.
fn dense_tasks(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..2.0, n..=n), 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The O(N)-per-task sweep DP equals the O(N²) brute force.
    #[test]
    fn offline_sweeps_match_bruteforce(tasks in dense_tasks(6, 12), init in 0usize..6) {
        let fast = offline::optimum(6, init, &tasks);
        let slow = offline::optimum_bruteforce(6, init, &tasks);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    /// The reconstructed trajectory achieves exactly the optimum value.
    #[test]
    fn offline_trajectory_is_optimal(tasks in unit_tasks(5, 15), init in 0usize..5) {
        let (opt, traj) = offline::optimum_with_trajectory(5, init, &tasks);
        let mut cost = 0.0;
        let mut cur = init;
        for (t, task) in tasks.iter().enumerate() {
            cost += cur.abs_diff(traj[t]) as f64;
            cur = traj[t];
            cost += task[cur];
        }
        prop_assert!((cost - opt).abs() < 1e-9, "traj {cost} vs opt {opt}");
    }

    /// Every online policy is weakly worse than the offline optimum,
    /// and the work function algorithm respects its (2N−1) guarantee
    /// with a +N slack for the finite horizon.
    #[test]
    fn online_policies_dominate_offline(tasks in unit_tasks(8, 40), init in 0usize..8) {
        let n = 8;
        let opt = offline::optimum(n, init, &tasks);
        for kind in [PolicyKind::WorkFunction, PolicyKind::SminGradient, PolicyKind::HstHedge] {
            let mut p = kind.build(n, init, 7);
            let c = run_policy(p.as_mut(), &tasks);
            prop_assert!(
                c.total() >= opt - 1e-9,
                "{}: online {} below optimum {opt}",
                kind.label(),
                c.total()
            );
        }
        // WFA guarantee: cost ≤ (2N−1)·OPT + additive (bounded by the
        // diameter for the finite prefix).
        let mut wfa = PolicyKind::WorkFunction.build(n, init, 0);
        let c = run_policy(wfa.as_mut(), &tasks);
        let bound = (2 * n - 1) as f64 * opt + 2.0 * n as f64;
        prop_assert!(c.total() <= bound + 1e-9, "WFA {} > bound {bound}", c.total());
    }

    /// Policies never step outside the state space and report the state
    /// they moved to.
    #[test]
    fn policies_stay_in_range(tasks in unit_tasks(9, 30), seed in 0u64..1000) {
        for kind in [PolicyKind::WorkFunction, PolicyKind::SminGradient, PolicyKind::HstHedge] {
            let mut p = kind.build(9, 4, seed);
            for task in &tasks {
                let s = p.serve(task);
                prop_assert!(s < 9);
                prop_assert_eq!(s, p.state());
            }
        }
    }
}

/// A reference pointer tree built independently of the arena: the
/// hierarchy as heap-allocated nodes with owned child vectors, split
/// with the same near-equal rule (branching ≤ 4, first `width % arity`
/// children one wider). This is the layout `HstHedge` used before the
/// flattening — kept here as the oracle the arena walk is diffed
/// against.
struct RefNode {
    lo: u32,
    hi: u32,
    children: Vec<RefNode>,
}

impl RefNode {
    fn build(lo: u32, hi: u32) -> Self {
        let width = (hi - lo) as usize;
        let mut children = Vec::new();
        if width >= 2 {
            let arity = width.min(4);
            let base = width / arity;
            let rem = width % arity;
            let mut cursor = lo;
            for j in 0..arity {
                let size = (base + usize::from(j < rem)) as u32;
                children.push(Self::build(cursor, cursor + size));
                cursor += size;
            }
            assert_eq!(cursor, hi, "children must tile the parent");
        }
        Self { lo, hi, children }
    }

    /// The families a pointer-tree hit walk on `state` updates, in
    /// leaf→root order: descend to the leaf, record every internal
    /// node on the way, reverse.
    fn hit_path(&self, state: u32) -> Vec<(u32, u32)> {
        let mut path = Vec::new();
        let mut node = self;
        while !node.children.is_empty() {
            path.push((node.lo, node.hi));
            node = node
                .children
                .iter()
                .find(|c| c.lo <= state && state < c.hi)
                .expect("children tile the parent");
        }
        assert_eq!(
            (node.lo, node.hi),
            (state, state + 1),
            "walk ends at the leaf"
        );
        path.reverse();
        path
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole differential: for every state of a random-size
    /// hierarchy, the arena's flat hit walk visits exactly the node
    /// sequence (order included) a reference pointer-tree walk visits.
    #[test]
    fn arena_hit_walk_matches_reference_pointer_tree(n in 1usize..96) {
        let policy = HstHedge::new(n, n / 2, 11);
        let reference = RefNode::build(0, n as u32);
        for state in 0..n {
            prop_assert_eq!(
                policy.hit_path(state),
                reference.hit_path(state as u32),
                "n={} state={}", n, state
            );
        }
    }

    /// Snapshot round-trip of the flattened state: a restored twin
    /// replays the continuation bit-identically — same realized
    /// states, same leaf distribution — and performs exactly the same
    /// work, including the cache bookkeeping the "one cache hit per
    /// restore" note in hst.rs pins (`probs_fresh` rides the snapshot,
    /// so restoring neither grants nor steals a leaf-cache refresh).
    #[test]
    fn snapshot_round_trip_preserves_flattened_caches(
        n in 2usize..64,
        seed in 0u64..500,
        warm in 0usize..40,
        cont in 1usize..40,
    ) {
        // Derived coin: exercise both freshness polarities of the
        // exported `probs_fresh` flag across the sample space.
        let read_dist = seed % 2 == 0;
        let mut original = HstHedge::new(n, n / 2, seed);
        for t in 0..warm {
            original.serve_hit((t * 7 + 3) % n);
        }
        if read_dist {
            // Freshen the leaf-distribution cache so both freshness
            // polarities of the exported `probs_fresh` flag are hit.
            let _ = original.leaf_distribution();
        }
        let snapshot = original.export_state().expect("hedge exports state");
        let mut restored = HstHedge::new(n, n / 2, seed.wrapping_add(1));
        restored.restore_state(&snapshot).expect("restore");
        prop_assert_eq!(restored.state(), original.state());

        let before_original = original.work_counters();
        let before_restored = restored.work_counters();
        for t in 0..cont {
            let hit = (t * 5 + 1) % n;
            prop_assert_eq!(original.serve_hit(hit), restored.serve_hit(hit));
            prop_assert_eq!(original.state(), restored.state());
        }
        let da = original.work_counters().diff(&before_original);
        let db = restored.work_counters().diff(&before_restored);
        prop_assert_eq!(da, db, "continuation must cost both twins the same work");

        let a = original.leaf_distribution();
        let b = restored.leaf_distribution();
        for i in 0..n {
            prop_assert_eq!(
                a.prob(i).to_bits(),
                b.prob(i).to_bits(),
                "leaf {} diverged after round-trip", i
            );
        }
    }
}

/// Deterministic spot-check: on a long single-state hammer, all three
/// policies end far from linear cost while a sitter pays every step.
#[test]
fn all_policies_beat_sitting_under_hammer() {
    let n = 16;
    let hot = 7;
    let tasks: Vec<Vec<f64>> = (0..800)
        .map(|_| {
            let mut v = vec![0.0; n];
            v[hot] = 1.0;
            v
        })
        .collect();
    for kind in [
        PolicyKind::WorkFunction,
        PolicyKind::SminGradient,
        PolicyKind::HstHedge,
    ] {
        let mut p = kind.build(n, hot, 13);
        let c = run_policy(p.as_mut(), &tasks);
        assert!(
            c.total() < 400.0,
            "{} paid {} on an 800-step hammer",
            kind.label(),
            c.total()
        );
    }
}
